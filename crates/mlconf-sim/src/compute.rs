//! Worker compute-time model.
//!
//! Minibatch gradient computation scales with FLOPs but not linearly in
//! threads: a serial fraction (Amdahl) plus a per-thread coordination
//! overhead capture the sublinear scaling measured on real training
//! frameworks.

use serde::{Deserialize, Serialize};

use crate::cluster::MachineType;
use crate::job::JobSpec;

/// Parameters of the compute model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Serial (non-parallelizable) fraction of minibatch work.
    pub serial_fraction: f64,
    /// Per-additional-thread coordination overhead, as a fraction of the
    /// ideal per-thread time.
    pub thread_overhead: f64,
    /// Multiplicative compute overhead when gradient compression is on.
    pub compression_overhead: f64,
    /// Fixed per-step framework overhead in seconds (kernel launches,
    /// data loading bookkeeping).
    pub per_step_overhead_secs: f64,
}

impl ComputeModel {
    /// Defaults calibrated to typical data-parallel CPU training: 5%
    /// serial work, 2% per-thread coordination cost, 10% compression
    /// overhead, 1 ms fixed per-step cost.
    pub fn default_model() -> Self {
        ComputeModel {
            serial_fraction: 0.05,
            thread_overhead: 0.02,
            compression_overhead: 0.10,
            per_step_overhead_secs: 1e-3,
        }
    }

    /// Effective parallel speedup of `threads` threads under Amdahl's law
    /// with coordination overhead.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn speedup(&self, threads: u32) -> f64 {
        assert!(threads > 0, "speedup of zero threads");
        let t = threads as f64;
        let amdahl = 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / t);
        let overhead = 1.0 + self.thread_overhead * (t - 1.0);
        amdahl / overhead
    }

    /// Expected (noise-free) seconds to compute one minibatch gradient.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `threads == 0`.
    pub fn batch_time(
        &self,
        job: &JobSpec,
        machine: &MachineType,
        batch: u32,
        threads: u32,
        compressed: bool,
    ) -> f64 {
        assert!(batch > 0, "zero batch");
        let flops = job.flops_per_batch(batch as u64);
        let single_thread_rate = machine.gflops_per_core() * 1e9;
        let base = flops / (single_thread_rate * self.speedup(threads));
        let comp = if compressed {
            1.0 + self.compression_overhead
        } else {
            1.0
        };
        base * comp + self.per_step_overhead_secs
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        Self::default_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::machine_by_name;

    fn job() -> JobSpec {
        JobSpec::new("t", 1_000_000, 1e7, 1e3, 1e3, 1.0, 1_000_000)
    }

    #[test]
    fn speedup_monotone_then_saturating() {
        let m = ComputeModel::default_model();
        assert_eq!(m.speedup(1), 1.0 / (1.0 + 0.0)); // exactly 1 at t=1
        assert!(m.speedup(2) > m.speedup(1));
        assert!(m.speedup(8) > m.speedup(4));
        // Sub-linear: 8 threads deliver well under 8x.
        assert!(m.speedup(8) < 8.0);
        // Amdahl ceiling: serial fraction 5% caps speedup near 20 even
        // with many threads; coordination overhead eventually reverses it.
        assert!(m.speedup(32) < 1.0 / m.serial_fraction);
    }

    #[test]
    fn batch_time_scales_with_batch() {
        let m = ComputeModel::default_model();
        let mach = machine_by_name("c4.2xlarge").unwrap();
        let t32 = m.batch_time(&job(), &mach, 32, 4, false);
        let t64 = m.batch_time(&job(), &mach, 64, 4, false);
        assert!(t64 > t32);
        // Near-proportional modulo fixed overhead.
        assert!((t64 - m.per_step_overhead_secs) / (t32 - m.per_step_overhead_secs) > 1.9);
    }

    #[test]
    fn more_threads_is_faster() {
        let m = ComputeModel::default_model();
        let mach = machine_by_name("c4.4xlarge").unwrap();
        let t1 = m.batch_time(&job(), &mach, 128, 1, false);
        let t8 = m.batch_time(&job(), &mach, 128, 8, false);
        assert!(t8 < t1);
    }

    #[test]
    fn compression_costs_compute() {
        let m = ComputeModel::default_model();
        let mach = machine_by_name("c4.2xlarge").unwrap();
        let plain = m.batch_time(&job(), &mach, 64, 4, false);
        let comp = m.batch_time(&job(), &mach, 64, 4, true);
        assert!(comp > plain);
    }

    #[test]
    fn faster_machines_compute_faster() {
        let m = ComputeModel::default_model();
        let slow = machine_by_name("m4.2xlarge").unwrap(); // 20 GFLOP/s/core
        let fast = machine_by_name("c4.2xlarge").unwrap(); // 32 GFLOP/s/core
        assert!(
            m.batch_time(&job(), &fast, 64, 4, false) < m.batch_time(&job(), &slow, 64, 4, false)
        );
    }

    #[test]
    #[should_panic(expected = "zero batch")]
    fn rejects_zero_batch() {
        ComputeModel::default_model().batch_time(
            &job(),
            &machine_by_name("m4.large").unwrap(),
            0,
            1,
            false,
        );
    }
}
