//! The validated system configuration a single simulation run executes
//! under — the decoded form of a tuner-proposed `Configuration`.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;

/// Synchronization discipline of parameter-server training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// Bulk-synchronous parallel: a barrier every step.
    Bsp,
    /// Fully asynchronous: no coordination between workers.
    Async,
    /// Stale-synchronous parallel: the fastest worker may lead the
    /// slowest by at most `staleness` steps.
    Ssp {
        /// Maximum permitted lead, in steps.
        staleness: u32,
    },
}

impl SyncMode {
    /// Stable name for reports and categorical knobs.
    pub fn name(&self) -> &'static str {
        match self {
            SyncMode::Bsp => "bsp",
            SyncMode::Async => "async",
            SyncMode::Ssp { .. } => "ssp",
        }
    }
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncMode::Ssp { staleness } => write!(f, "ssp({staleness})"),
            other => f.write_str(other.name()),
        }
    }
}

/// Distribution architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arch {
    /// Parameter-server: `num_ps` dedicated server nodes, the rest are
    /// workers.
    ParameterServer {
        /// Number of dedicated server nodes (≥ 1, < cluster size).
        num_ps: u32,
        /// Synchronization discipline.
        sync: SyncMode,
    },
    /// Ring all-reduce: every node is a worker; synchronous by
    /// construction.
    AllReduce,
}

impl Arch {
    /// Stable name for reports and categorical knobs.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::ParameterServer { .. } => "ps",
            Arch::AllReduce => "allreduce",
        }
    }
}

/// Error raised when a run configuration is structurally invalid for its
/// cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidRunConfig {
    reason: String,
}

impl InvalidRunConfig {
    /// The reason the configuration is invalid.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for InvalidRunConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid run configuration: {}", self.reason)
    }
}

impl std::error::Error for InvalidRunConfig {}

/// A fully specified system configuration for one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    cluster: ClusterSpec,
    arch: Arch,
    batch_per_worker: u32,
    threads_per_worker: u32,
    /// Whether gradient traffic is compressed (4× smaller payloads at a
    /// small compute overhead).
    compress_gradients: bool,
}

impl RunConfig {
    /// Creates and validates a run configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRunConfig`] when the PS count leaves no workers,
    /// thread counts exceed cores, or batch/thread values are zero.
    pub fn new(
        cluster: ClusterSpec,
        arch: Arch,
        batch_per_worker: u32,
        threads_per_worker: u32,
        compress_gradients: bool,
    ) -> Result<Self, InvalidRunConfig> {
        let fail = |reason: String| Err(InvalidRunConfig { reason });
        if batch_per_worker == 0 {
            return fail("batch_per_worker must be positive".into());
        }
        if threads_per_worker == 0 {
            return fail("threads_per_worker must be positive".into());
        }
        if threads_per_worker > cluster.machine().cores() {
            return fail(format!(
                "threads_per_worker {threads_per_worker} exceeds {} cores of {}",
                cluster.machine().cores(),
                cluster.machine().name()
            ));
        }
        if let Arch::ParameterServer { num_ps, sync } = arch {
            if num_ps == 0 {
                return fail("parameter-server architecture needs num_ps >= 1".into());
            }
            if num_ps >= cluster.num_nodes() {
                return fail(format!(
                    "num_ps {num_ps} leaves no workers on a {}-node cluster",
                    cluster.num_nodes()
                ));
            }
            if let SyncMode::Ssp { staleness } = sync {
                if staleness == 0 {
                    return fail("ssp staleness must be >= 1 (0 is bsp)".into());
                }
            }
        }
        Ok(RunConfig {
            cluster,
            arch,
            batch_per_worker,
            threads_per_worker,
            compress_gradients,
        })
    }

    /// The cluster this run executes on.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The distribution architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Per-worker minibatch size.
    pub fn batch_per_worker(&self) -> u32 {
        self.batch_per_worker
    }

    /// Compute threads per worker.
    pub fn threads_per_worker(&self) -> u32 {
        self.threads_per_worker
    }

    /// Whether gradient compression is enabled.
    pub fn compress_gradients(&self) -> bool {
        self.compress_gradients
    }

    /// Number of worker nodes under this configuration.
    pub fn num_workers(&self) -> u32 {
        match self.arch {
            Arch::ParameterServer { num_ps, .. } => self.cluster.num_nodes() - num_ps,
            Arch::AllReduce => self.cluster.num_nodes(),
        }
    }

    /// Number of dedicated server nodes (0 for all-reduce).
    pub fn num_servers(&self) -> u32 {
        match self.arch {
            Arch::ParameterServer { num_ps, .. } => num_ps,
            Arch::AllReduce => 0,
        }
    }

    /// Global (summed) minibatch size per step.
    pub fn global_batch(&self) -> u64 {
        self.batch_per_worker as u64 * self.num_workers() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{machine_by_name, ClusterSpec};

    fn cluster(n: u32) -> ClusterSpec {
        ClusterSpec::new(machine_by_name("c4.2xlarge").unwrap(), n)
    }

    #[test]
    fn ps_roles_split() {
        let rc = RunConfig::new(
            cluster(10),
            Arch::ParameterServer {
                num_ps: 3,
                sync: SyncMode::Bsp,
            },
            64,
            4,
            false,
        )
        .unwrap();
        assert_eq!(rc.num_workers(), 7);
        assert_eq!(rc.num_servers(), 3);
        assert_eq!(rc.global_batch(), 7 * 64);
    }

    #[test]
    fn allreduce_uses_all_nodes() {
        let rc = RunConfig::new(cluster(8), Arch::AllReduce, 32, 8, true).unwrap();
        assert_eq!(rc.num_workers(), 8);
        assert_eq!(rc.num_servers(), 0);
        assert!(rc.compress_gradients());
    }

    #[test]
    fn rejects_ps_eating_all_nodes() {
        let r = RunConfig::new(
            cluster(4),
            Arch::ParameterServer {
                num_ps: 4,
                sync: SyncMode::Bsp,
            },
            64,
            4,
            false,
        );
        assert!(r.is_err());
        assert!(r.unwrap_err().to_string().contains("no workers"));
    }

    #[test]
    fn rejects_thread_oversubscription() {
        // c4.2xlarge has 8 cores.
        let r = RunConfig::new(cluster(4), Arch::AllReduce, 64, 9, false);
        assert!(r.unwrap_err().reason().contains("cores"));
    }

    #[test]
    fn rejects_zero_batch_and_zero_staleness() {
        assert!(RunConfig::new(cluster(4), Arch::AllReduce, 0, 4, false).is_err());
        let r = RunConfig::new(
            cluster(4),
            Arch::ParameterServer {
                num_ps: 1,
                sync: SyncMode::Ssp { staleness: 0 },
            },
            32,
            4,
            false,
        );
        assert!(r.is_err());
    }

    #[test]
    fn sync_mode_names() {
        assert_eq!(SyncMode::Bsp.name(), "bsp");
        assert_eq!(SyncMode::Ssp { staleness: 3 }.to_string(), "ssp(3)");
        assert_eq!(Arch::AllReduce.name(), "allreduce");
    }
}
