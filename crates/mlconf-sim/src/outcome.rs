//! Results of a simulated training run.

use mlconf_util::stats::OnlineStats;
use serde::{Deserialize, Serialize};

use crate::memory::Infeasibility;

/// Where a training step's wall-clock time went, summed over the measured
/// window (seconds of aggregate worker time).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Gradient computation.
    pub compute: f64,
    /// Gradient push / reduce-scatter.
    pub push: f64,
    /// Model pull / all-gather.
    pub pull: f64,
    /// Waiting in the server apply queue (PS) — zero for all-reduce.
    pub server_queue: f64,
    /// Server apply service time.
    pub server_apply: f64,
    /// Synchronization wait (barrier or staleness block).
    pub sync_wait: f64,
}

impl PhaseBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.compute
            + self.push
            + self.pull
            + self.server_queue
            + self.server_apply
            + self.sync_wait
    }

    /// Fraction of time in communication (push + pull).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.push + self.pull) / t
        }
    }
}

/// Outcome of simulating a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    infeasibility: Option<Infeasibility>,
    steps_measured: u64,
    global_batch: u64,
    duration_secs: f64,
    step_time: OnlineStats,
    phases: PhaseBreakdown,
    avg_staleness_steps: f64,
    cluster_price_per_hour: f64,
}

impl SimResult {
    /// Builds a feasible result from engine measurements.
    ///
    /// # Panics
    ///
    /// Panics if `duration_secs` or `global_batch` are non-positive while
    /// steps were measured.
    pub fn feasible(
        steps_measured: u64,
        global_batch: u64,
        duration_secs: f64,
        step_time: OnlineStats,
        phases: PhaseBreakdown,
        avg_staleness_steps: f64,
        cluster_price_per_hour: f64,
    ) -> Self {
        if steps_measured > 0 {
            assert!(duration_secs > 0.0, "measured steps in zero time");
            assert!(global_batch > 0, "measured steps with empty batches");
        }
        SimResult {
            infeasibility: None,
            steps_measured,
            global_batch,
            duration_secs,
            step_time,
            phases,
            avg_staleness_steps,
            cluster_price_per_hour,
        }
    }

    /// Builds an infeasible (e.g. OOM) result.
    pub fn infeasible(why: Infeasibility, cluster_price_per_hour: f64) -> Self {
        SimResult {
            infeasibility: Some(why),
            steps_measured: 0,
            global_batch: 0,
            duration_secs: 0.0,
            step_time: OnlineStats::new(),
            phases: PhaseBreakdown::default(),
            avg_staleness_steps: 0.0,
            cluster_price_per_hour,
        }
    }

    /// Whether the configuration ran at all.
    pub fn is_feasible(&self) -> bool {
        self.infeasibility.is_none()
    }

    /// The infeasibility reason, if any.
    pub fn infeasibility(&self) -> Option<Infeasibility> {
        self.infeasibility
    }

    /// Measured steps (per worker-step-group; one global step in BSP).
    pub fn steps_measured(&self) -> u64 {
        self.steps_measured
    }

    /// Global minibatch size (samples consumed per global step).
    pub fn global_batch(&self) -> u64 {
        self.global_batch
    }

    /// Wall-clock seconds of the measured window.
    pub fn duration_secs(&self) -> f64 {
        self.duration_secs
    }

    /// Steady-state training throughput in samples/second (0 if
    /// infeasible).
    pub fn throughput(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            0.0
        } else {
            self.steps_measured as f64 * self.global_batch as f64 / self.duration_secs
        }
    }

    /// Distribution of per-step wall-clock times.
    pub fn step_time(&self) -> &OnlineStats {
        &self.step_time
    }

    /// Aggregate phase breakdown over the measured window.
    pub fn phases(&self) -> &PhaseBreakdown {
        &self.phases
    }

    /// Mean gradient staleness in steps (0 under BSP / all-reduce); feeds
    /// the statistical-efficiency penalty in `mlconf-workloads`.
    pub fn avg_staleness_steps(&self) -> f64 {
        self.avg_staleness_steps
    }

    /// Dollar cost per hour of the cluster that was simulated.
    pub fn cluster_price_per_hour(&self) -> f64 {
        self.cluster_price_per_hour
    }

    /// Dollar cost per training sample at the measured throughput.
    pub fn cost_per_sample(&self) -> f64 {
        let tput = self.throughput();
        if tput <= 0.0 {
            f64::INFINITY
        } else {
            self.cluster_price_per_hour / 3600.0 / tput
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Infeasibility;

    fn stats(values: &[f64]) -> OnlineStats {
        values.iter().copied().collect()
    }

    #[test]
    fn feasible_throughput() {
        let r = SimResult::feasible(
            100,
            256,
            50.0,
            stats(&[0.5; 4]),
            PhaseBreakdown::default(),
            0.0,
            2.0,
        );
        assert!(r.is_feasible());
        assert_eq!(r.throughput(), 100.0 * 256.0 / 50.0);
        // cost/sample = (2 $/h / 3600 s/h) / 512 samples/s
        assert!((r.cost_per_sample() - 2.0 / 3600.0 / 512.0).abs() < 1e-15);
    }

    #[test]
    fn infeasible_result_behaviour() {
        let r = SimResult::infeasible(
            Infeasibility::WorkerOom {
                required: 10,
                available: 5,
            },
            2.0,
        );
        assert!(!r.is_feasible());
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.cost_per_sample(), f64::INFINITY);
        assert!(r.infeasibility().is_some());
    }

    #[test]
    fn phase_breakdown_fractions() {
        let p = PhaseBreakdown {
            compute: 6.0,
            push: 2.0,
            pull: 2.0,
            server_queue: 0.0,
            server_apply: 0.0,
            sync_wait: 0.0,
        };
        assert_eq!(p.total(), 10.0);
        assert!((p.comm_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::default().comm_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero time")]
    fn feasible_rejects_inconsistent_measurements() {
        SimResult::feasible(
            10,
            1,
            0.0,
            OnlineStats::new(),
            PhaseBreakdown::default(),
            0.0,
            1.0,
        );
    }
}
