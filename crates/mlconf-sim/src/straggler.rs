//! Straggler and heterogeneity modelling.
//!
//! Three effects observed in real clusters, each independently tunable:
//!
//! 1. **Persistent heterogeneity** — each node gets a fixed speed factor
//!    drawn once per run (co-location, silicon lottery).
//! 2. **Per-task jitter** — every task's duration is multiplied by a
//!    unit-mean log-normal factor (OS noise, GC, cache state).
//! 3. **Transient stragglers** — with small probability a task is hit by
//!    a heavy-tailed Pareto slowdown (page cache miss storms, network
//!    incast, background maintenance).

use mlconf_util::dist::{LogNormal, Pareto};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the straggler model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerModel {
    /// Coefficient of variation of persistent per-node speed factors.
    pub node_speed_cv: f64,
    /// Coefficient of variation of per-task multiplicative jitter.
    pub task_jitter_cv: f64,
    /// Probability that a task is hit by a transient slowdown.
    pub transient_prob: f64,
    /// Pareto shape of transient slowdowns (smaller = heavier tail);
    /// slowdown factors start at [`StragglerModel::TRANSIENT_MIN_FACTOR`].
    pub transient_shape: f64,
}

impl StragglerModel {
    /// Minimum multiplicative slowdown of a transient straggler event.
    pub const TRANSIENT_MIN_FACTOR: f64 = 1.5;

    /// The default model: mild heterogeneity matching public cloud
    /// measurements (±5% node spread, 10% task jitter, 1% transient
    /// stragglers with a 2.2-shaped tail).
    pub fn cloud_default() -> Self {
        StragglerModel {
            node_speed_cv: 0.05,
            task_jitter_cv: 0.10,
            transient_prob: 0.01,
            transient_shape: 2.2,
        }
    }

    /// A perfectly homogeneous, noise-free cluster (for tests and
    /// analytic cross-checks).
    pub fn none() -> Self {
        StragglerModel {
            node_speed_cv: 0.0,
            task_jitter_cv: 0.0,
            transient_prob: 0.0,
            transient_shape: 2.2,
        }
    }

    /// Scales all noise magnitudes by `severity` (0 = none, 1 = default);
    /// used by the robustness experiment (E9).
    pub fn scaled(severity: f64) -> Self {
        assert!(
            severity >= 0.0 && severity.is_finite(),
            "severity must be >= 0, got {severity}"
        );
        let base = StragglerModel::cloud_default();
        StragglerModel {
            node_speed_cv: base.node_speed_cv * severity,
            task_jitter_cv: base.task_jitter_cv * severity,
            transient_prob: (base.transient_prob * severity).min(0.5),
            transient_shape: base.transient_shape,
        }
    }

    /// Validates the model's parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range (negative CVs, probability
    /// outside `[0,1]`, shape ≤ 1 which would make the tail mean infinite).
    pub fn validate(&self) {
        assert!(self.node_speed_cv >= 0.0, "node_speed_cv < 0");
        assert!(self.task_jitter_cv >= 0.0, "task_jitter_cv < 0");
        assert!(
            (0.0..=1.0).contains(&self.transient_prob),
            "transient_prob out of [0,1]"
        );
        assert!(self.transient_shape > 1.0, "transient_shape must exceed 1");
    }

    /// Draws persistent speed factors for `n` nodes (multiplies task
    /// durations; ≥ means slower).
    pub fn draw_node_factors<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        self.validate();
        if self.node_speed_cv == 0.0 {
            return vec![1.0; n];
        }
        let d = LogNormal::unit_mean(self.node_speed_cv).expect("validated cv");
        (0..n).map(|_| d.sample(rng)).collect()
    }

    /// Draws one task's multiplicative duration factor (jitter plus a
    /// possible transient slowdown).
    pub fn draw_task_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut factor = if self.task_jitter_cv == 0.0 {
            1.0
        } else {
            LogNormal::unit_mean(self.task_jitter_cv)
                .expect("validated cv")
                .sample(rng)
        };
        if self.transient_prob > 0.0 && rng.gen::<f64>() < self.transient_prob {
            let p = Pareto::new(Self::TRANSIENT_MIN_FACTOR, self.transient_shape)
                .expect("validated shape");
            factor *= p.sample(rng);
        }
        factor
    }
}

impl Default for StragglerModel {
    fn default() -> Self {
        StragglerModel::cloud_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlconf_util::rng::Pcg64;
    use mlconf_util::stats::OnlineStats;

    #[test]
    fn none_is_deterministic_unity() {
        let m = StragglerModel::none();
        let mut rng = Pcg64::seed(1);
        assert_eq!(m.draw_node_factors(5, &mut rng), vec![1.0; 5]);
        for _ in 0..32 {
            assert_eq!(m.draw_task_factor(&mut rng), 1.0);
        }
    }

    #[test]
    fn node_factors_have_requested_spread() {
        let m = StragglerModel {
            node_speed_cv: 0.2,
            ..StragglerModel::none()
        };
        let mut rng = Pcg64::seed(2);
        let s: OnlineStats = m.draw_node_factors(20_000, &mut rng).into_iter().collect();
        assert!((s.mean() - 1.0).abs() < 0.01, "mean {}", s.mean());
        assert!(
            (s.std_dev() - 0.2).abs() < 0.02,
            "cv {} want 0.2",
            s.std_dev()
        );
        assert!(s.min() > 0.0);
    }

    #[test]
    fn task_factor_mean_near_one_without_transients() {
        let m = StragglerModel {
            task_jitter_cv: 0.1,
            ..StragglerModel::none()
        };
        let mut rng = Pcg64::seed(3);
        let s: OnlineStats = (0..40_000).map(|_| m.draw_task_factor(&mut rng)).collect();
        assert!((s.mean() - 1.0).abs() < 0.01, "mean {}", s.mean());
    }

    #[test]
    fn transients_fatten_the_tail() {
        let base = StragglerModel {
            task_jitter_cv: 0.05,
            ..StragglerModel::none()
        };
        let heavy = StragglerModel {
            task_jitter_cv: 0.05,
            transient_prob: 0.05,
            transient_shape: 2.0,
            ..StragglerModel::none()
        };
        let mut rng = Pcg64::seed(4);
        let max_base = (0..20_000)
            .map(|_| base.draw_task_factor(&mut rng))
            .fold(0.0, f64::max);
        let max_heavy = (0..20_000)
            .map(|_| heavy.draw_task_factor(&mut rng))
            .fold(0.0, f64::max);
        assert!(
            max_heavy > max_base * 1.2,
            "heavy tail max {max_heavy} vs base {max_base}"
        );
    }

    #[test]
    fn scaled_zero_equals_none() {
        let s = StragglerModel::scaled(0.0);
        assert_eq!(s.node_speed_cv, 0.0);
        assert_eq!(s.task_jitter_cv, 0.0);
        assert_eq!(s.transient_prob, 0.0);
    }

    #[test]
    fn scaled_caps_probability() {
        let s = StragglerModel::scaled(1000.0);
        assert!(s.transient_prob <= 0.5);
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn scaled_rejects_negative() {
        StragglerModel::scaled(-1.0);
    }

    #[test]
    #[should_panic(expected = "transient_shape")]
    fn validate_rejects_infinite_mean_tail() {
        StragglerModel {
            transient_shape: 1.0,
            ..StragglerModel::cloud_default()
        }
        .validate();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mlconf_util::rng::Pcg64;
    use proptest::prelude::*;

    fn model(params: (f64, f64, f64, f64)) -> StragglerModel {
        let (node_speed_cv, task_jitter_cv, transient_prob, transient_shape) = params;
        StragglerModel {
            node_speed_cv,
            task_jitter_cv,
            transient_prob,
            transient_shape,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Node factors are always strictly positive and finite — the
        /// unit-mean log-normal can dip below 1 (a fast node) but never
        /// to zero or infinity — and identical seeds give identical
        /// draws.
        #[test]
        fn node_factors_positive_finite_deterministic(
            params in (0.0f64..0.5, 0.0f64..0.5, 0.0f64..0.3, 1.5f64..4.0),
            n in 0usize..64,
            seed in 0u64..100,
        ) {
            let m = model(params);
            let a = m.draw_node_factors(n, &mut Pcg64::seed(seed));
            prop_assert_eq!(a.len(), n);
            for &f in &a {
                prop_assert!(f > 0.0 && f.is_finite(), "bad node factor {f}");
            }
            let b = m.draw_node_factors(n, &mut Pcg64::seed(seed));
            prop_assert_eq!(a, b, "same seed must give same factors");
        }

        /// Task factors are strictly positive, finite, and at least the
        /// Pareto floor whenever a transient actually fired (factor can
        /// only grow); identical seeds replay identically.
        #[test]
        fn task_factors_positive_finite_deterministic(
            params in (0.0f64..0.5, 0.0f64..0.5, 0.0f64..0.3, 1.5f64..4.0),
            seed in 0u64..100,
        ) {
            let m = model(params);
            let mut rng = Pcg64::seed(seed);
            let draws: Vec<f64> = (0..64).map(|_| m.draw_task_factor(&mut rng)).collect();
            // With cv <= 0.5 and a Pareto tail of shape >= 1.5 starting
            // at 1.5, a 1e4x slowdown would be a ~1-in-1e6 event; the
            // deterministic draw stream makes this bound stable.
            for &f in &draws {
                prop_assert!(f > 0.0 && f.is_finite(), "bad task factor {f}");
                prop_assert!(f < 1e4, "tail unreasonably heavy for params: {f}");
            }
            let mut rng2 = Pcg64::seed(seed);
            let replay: Vec<f64> = (0..64).map(|_| m.draw_task_factor(&mut rng2)).collect();
            prop_assert_eq!(draws, replay, "same seed must replay identically");
        }
    }
}
