//! Failure and checkpointing models.
//!
//! Two complementary treatments:
//!
//! - [`FailureModel`] — the *expected-overhead* view: long jobs lose a
//!   predictable fraction of throughput to checkpoint duty cycle and
//!   crash-recovery, scaling with cluster size and step time.
//! - [`CrashEvent`] — *injected* outages: a specific worker goes dark
//!   for a window of simulated time, and the engines play the outage
//!   out event-by-event. This is where synchronization semantics show
//!   their teeth: a BSP barrier transmits one node's outage to every
//!   worker, while asynchronous execution contains it.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// An injected outage of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Index of the affected worker (0-based).
    pub worker: u32,
    /// Outage start, seconds of simulated time.
    pub at_secs: f64,
    /// Outage duration in seconds (detection + restart + rejoin).
    pub outage_secs: f64,
}

impl CrashEvent {
    /// Validates the event.
    ///
    /// # Panics
    ///
    /// Panics on negative/non-finite times.
    pub fn validate(&self) {
        assert!(
            self.at_secs >= 0.0 && self.at_secs.is_finite(),
            "invalid crash time {}",
            self.at_secs
        );
        assert!(
            self.outage_secs > 0.0 && self.outage_secs.is_finite(),
            "invalid outage {}",
            self.outage_secs
        );
    }

    /// Outage window start as simulated time.
    pub fn window_start(&self) -> SimTime {
        SimTime::from_secs_f64(self.at_secs)
    }

    /// Outage window end as simulated time.
    pub fn window_end(&self) -> SimTime {
        SimTime::from_secs_f64(self.at_secs + self.outage_secs)
    }
}

/// If `t` falls inside one of `worker`'s outage windows, returns the
/// earliest time the worker may proceed; otherwise returns `t`.
/// Cascading windows are resolved by iterating to a fixed point.
pub fn next_available(crashes: &[CrashEvent], worker: u32, t: SimTime) -> SimTime {
    let mut now = t;
    loop {
        let mut moved = false;
        for c in crashes.iter().filter(|c| c.worker == worker) {
            if now >= c.window_start() && now < c.window_end() {
                now = c.window_end();
                moved = true;
            }
        }
        if !moved {
            return now;
        }
    }
}

/// Failure/checkpoint overhead parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time between failures of a single node, in hours.
    pub node_mtbf_hours: f64,
    /// Time to detect a failure and restart the job, in seconds.
    pub restart_secs: f64,
    /// Steps between checkpoints.
    pub checkpoint_interval_steps: u32,
    /// Seconds to write one checkpoint (training pauses).
    pub checkpoint_secs: f64,
}

impl FailureModel {
    /// Defaults for a public cloud: 30-day node MTBF, 2-minute restart,
    /// checkpoint every 500 steps costing 10 s.
    pub fn cloud_default() -> Self {
        FailureModel {
            node_mtbf_hours: 720.0,
            restart_secs: 120.0,
            checkpoint_interval_steps: 500,
            checkpoint_secs: 10.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    pub fn validate(&self) {
        assert!(
            self.node_mtbf_hours > 0.0 && self.node_mtbf_hours.is_finite(),
            "invalid mtbf"
        );
        assert!(self.restart_secs >= 0.0, "invalid restart time");
        assert!(self.checkpoint_interval_steps > 0, "invalid ckpt interval");
        assert!(self.checkpoint_secs >= 0.0, "invalid ckpt cost");
    }

    /// Expected throughput degradation factor in `(0, 1]`: useful
    /// progress per wall-clock second relative to a failure-free run.
    ///
    /// Composed of the checkpoint duty cycle and the expected loss per
    /// failure (restart plus half a checkpoint interval of lost work),
    /// with failures arriving at `nodes / mtbf`.
    pub fn efficiency_factor(&self, step_secs: f64, nodes: u32) -> f64 {
        self.validate();
        assert!(
            step_secs > 0.0 && step_secs.is_finite(),
            "invalid step time {step_secs}"
        );
        let interval_secs = self.checkpoint_interval_steps as f64 * step_secs;
        let ckpt_overhead = self.checkpoint_secs / (interval_secs + self.checkpoint_secs);
        let failures_per_sec = nodes as f64 / (self.node_mtbf_hours * 3600.0);
        let loss_per_failure = self.restart_secs + 0.5 * interval_secs;
        let failure_overhead = (failures_per_sec * loss_per_failure).min(0.95);
        ((1.0 - ckpt_overhead) * (1.0 - failure_overhead)).clamp(0.01, 1.0)
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        Self::cloud_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_in_unit_interval() {
        let f = FailureModel::cloud_default();
        for nodes in [1, 8, 64] {
            for step in [0.01, 0.1, 1.0, 10.0] {
                let e = f.efficiency_factor(step, nodes);
                assert!(e > 0.0 && e <= 1.0, "nodes={nodes} step={step}: {e}");
            }
        }
    }

    #[test]
    fn more_nodes_lose_more() {
        let f = FailureModel::cloud_default();
        assert!(f.efficiency_factor(0.5, 64) < f.efficiency_factor(0.5, 4));
    }

    #[test]
    fn flakier_nodes_lose_more() {
        let good = FailureModel::cloud_default();
        let bad = FailureModel {
            node_mtbf_hours: 24.0,
            ..good
        };
        assert!(bad.efficiency_factor(0.5, 16) < good.efficiency_factor(0.5, 16));
    }

    #[test]
    fn frequent_checkpoints_cost_duty_cycle() {
        let sparse = FailureModel::cloud_default();
        let frequent = FailureModel {
            checkpoint_interval_steps: 10,
            ..sparse
        };
        assert!(frequent.efficiency_factor(0.5, 8) < sparse.efficiency_factor(0.5, 8));
    }

    #[test]
    fn near_perfect_for_reliable_small_cluster() {
        let f = FailureModel {
            node_mtbf_hours: 1e6,
            restart_secs: 1.0,
            checkpoint_interval_steps: 100_000,
            checkpoint_secs: 0.1,
        };
        assert!(f.efficiency_factor(1.0, 2) > 0.999);
    }

    #[test]
    #[should_panic(expected = "invalid step time")]
    fn rejects_bad_step_time() {
        FailureModel::cloud_default().efficiency_factor(0.0, 4);
    }

    #[test]
    fn next_available_outside_window_is_identity() {
        let crashes = [CrashEvent {
            worker: 0,
            at_secs: 10.0,
            outage_secs: 5.0,
        }];
        let t = SimTime::from_secs_f64(3.0);
        assert_eq!(next_available(&crashes, 0, t), t);
        // Other workers unaffected even inside the window.
        let inside = SimTime::from_secs_f64(12.0);
        assert_eq!(next_available(&crashes, 1, inside), inside);
    }

    #[test]
    fn next_available_defers_to_window_end() {
        let crashes = [CrashEvent {
            worker: 2,
            at_secs: 10.0,
            outage_secs: 5.0,
        }];
        let inside = SimTime::from_secs_f64(12.0);
        assert_eq!(
            next_available(&crashes, 2, inside),
            SimTime::from_secs_f64(15.0)
        );
        // Window end itself is available (half-open interval).
        let boundary = SimTime::from_secs_f64(15.0);
        assert_eq!(next_available(&crashes, 2, boundary), boundary);
    }

    #[test]
    fn cascading_windows_resolve() {
        let crashes = [
            CrashEvent {
                worker: 0,
                at_secs: 10.0,
                outage_secs: 5.0,
            },
            CrashEvent {
                worker: 0,
                at_secs: 14.0,
                outage_secs: 6.0,
            },
        ];
        let t = SimTime::from_secs_f64(11.0);
        assert_eq!(next_available(&crashes, 0, t), SimTime::from_secs_f64(20.0));
    }

    #[test]
    #[should_panic(expected = "invalid outage")]
    fn crash_event_validation() {
        CrashEvent {
            worker: 0,
            at_secs: 1.0,
            outage_secs: 0.0,
        }
        .validate();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// `next_available` never travels backwards in time, and its
        /// result never lands strictly inside one of the worker's own
        /// outage windows.
        #[test]
        fn next_available_monotone_and_outside_windows(
            raw in proptest::collection::vec((0u32..4, 0.0f64..500.0, 0.1f64..60.0), 0..6),
            worker in 0u32..4,
            t_secs in 0.0f64..600.0,
        ) {
            let crashes: Vec<CrashEvent> = raw
                .into_iter()
                .map(|(worker, at_secs, outage_secs)| CrashEvent {
                    worker,
                    at_secs,
                    outage_secs,
                })
                .collect();
            let t = SimTime::from_secs_f64(t_secs);
            let out = next_available(&crashes, worker, t);
            prop_assert!(out >= t, "went backwards: {out:?} < {t:?}");
            for c in crashes.iter().filter(|c| c.worker == worker) {
                prop_assert!(
                    out < c.window_start() || out >= c.window_end(),
                    "landed inside outage [{:?}, {:?}): {out:?}",
                    c.window_start(),
                    c.window_end()
                );
            }
            // Idempotent: an available instant stays put.
            prop_assert_eq!(next_available(&crashes, worker, out), out);
        }

        /// Efficiency stays a valid degradation factor in `(0, 1]` over
        /// the whole plausible parameter space.
        #[test]
        fn efficiency_factor_in_unit_interval(
            mtbf_hours in 1.0f64..1e5,
            restart_secs in 0.0f64..3600.0,
            interval_steps in 1u32..100_000,
            ckpt_secs in 0.0f64..300.0,
            step_secs in 1e-3f64..100.0,
            nodes in 1u32..256,
        ) {
            let f = FailureModel {
                node_mtbf_hours: mtbf_hours,
                restart_secs,
                checkpoint_interval_steps: interval_steps,
                checkpoint_secs: ckpt_secs,
            };
            let e = f.efficiency_factor(step_secs, nodes);
            prop_assert!(e > 0.0 && e <= 1.0, "factor out of (0,1]: {e}");
            prop_assert!(e.is_finite());
        }
    }
}
