#![warn(missing_docs)]
//! Discrete-event simulator of distributed machine-learning training
//! clusters.
//!
//! This crate is the substitute for the physical cluster the paper's
//! tuner evaluated configurations on (see DESIGN.md, "Substitutions"). It
//! models:
//!
//! - **Clusters** ([`cluster`]) — a catalog of cloud machine types
//!   (cores, memory, NIC bandwidth, price) and homogeneous clusters of
//!   them.
//! - **Jobs** ([`job`]) — per-sample FLOPs/bytes, model size and gradient
//!   sparsity of a training workload.
//! - **Execution** — an event-driven parameter-server engine ([`ps`])
//!   with BSP/ASP/SSP synchronization and queued server applies, and a
//!   lockstep ring all-reduce engine ([`allreduce`]).
//! - **Infrastructure noise** ([`straggler`]) — persistent node
//!   heterogeneity, per-task jitter, heavy-tailed transient stragglers.
//! - **Feasibility** ([`memory`]) — OOM cliffs on workers and servers,
//!   reported as first-class failed outcomes the tuner must learn from.
//! - **Failures** ([`failure`]) — checkpoint duty cycle and expected
//!   failure losses.
//! - **Dynamic environments** ([`scenario`]) — deterministic scripts of
//!   time-varying shifts (workload phases, spot-preemption waves,
//!   autoscaling, congestion) so evaluations at different wall-clock
//!   epochs see different ground truth.
//!
//! The entry point is [`engine::simulate`], which returns a
//! [`outcome::SimResult`] with steady-state throughput, a per-phase time
//! breakdown, and measured gradient staleness.
//!
//! # Examples
//!
//! ```
//! use mlconf_sim::cluster::{machine_by_name, ClusterSpec};
//! use mlconf_sim::engine::{simulate, SimOptions};
//! use mlconf_sim::job::JobSpec;
//! use mlconf_sim::runconfig::{Arch, RunConfig, SyncMode};
//! use mlconf_util::rng::Pcg64;
//!
//! let job = JobSpec::new("mlp", 10_000_000, 5e7, 1e3, 1e3, 1.0, 1_000_000);
//! let cluster = ClusterSpec::new(machine_by_name("c4.2xlarge").unwrap(), 8);
//! let rc = RunConfig::new(
//!     cluster,
//!     Arch::ParameterServer { num_ps: 2, sync: SyncMode::Bsp },
//!     64,
//!     8,
//!     false,
//! )?;
//! let mut rng = Pcg64::seed(42);
//! let result = simulate(&job, &rc, &SimOptions::default(), &mut rng);
//! assert!(result.is_feasible());
//! println!("throughput: {:.0} samples/s", result.throughput());
//! # Ok::<(), mlconf_sim::runconfig::InvalidRunConfig>(())
//! ```

pub mod allreduce;
pub mod cluster;
pub mod compute;
pub mod engine;
pub mod events;
pub mod failure;
pub mod faultplan;
pub mod job;
pub mod memory;
pub mod network;
pub mod outcome;
pub mod ps;
pub mod runconfig;
pub mod scenario;
pub mod straggler;
pub mod time;

pub use cluster::{ClusterSpec, MachineType};
pub use engine::{simulate, SimOptions};
pub use faultplan::{FaultEvent, FaultKind, FaultPlan};
pub use job::JobSpec;
pub use outcome::{PhaseBreakdown, SimResult};
pub use runconfig::{Arch, RunConfig, SyncMode};
pub use scenario::{EnvState, ScenarioEvent, ScenarioScript};
pub use straggler::StragglerModel;
