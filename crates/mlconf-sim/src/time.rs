//! Simulated time as integer microseconds.
//!
//! Integer time gives the event queue a total order with exact equality,
//! which keeps runs bit-for-bit reproducible; `f64` seconds are only used
//! at the API boundary.

use serde::{Deserialize, Serialize};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from seconds, rounding to microseconds and
    /// saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && !secs.is_nan(), "invalid sim time {secs}");
        SimTime((secs * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Raw microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Advances by a duration in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn advance(&self, secs: f64) -> SimTime {
        assert!(secs >= 0.0 && !secs.is_nan(), "invalid advance {secs}");
        SimTime(self.0.saturating_add((secs * 1e6).round() as u64))
    }

    /// Duration since an earlier time, in seconds (0 if `earlier` is
    /// later).
    pub fn since(&self, earlier: SimTime) -> f64 {
        self.0.saturating_sub(earlier.0) as f64 / 1e6
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_micros(), 1_250_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn advance_and_since() {
        let t0 = SimTime::ZERO;
        let t1 = t0.advance(0.5);
        let t2 = t1.advance(0.25);
        assert!((t2.since(t0) - 0.75).abs() < 1e-9);
        assert_eq!(t0.since(t2), 0.0, "since saturates at zero");
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn rejects_negative() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(2.5).to_string(), "2.500000s");
    }
}
