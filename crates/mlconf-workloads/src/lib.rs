#![warn(missing_docs)]
//! Distributed-ML workload models, convergence laws, and tuning
//! objectives.
//!
//! This crate closes the loop between the configuration space
//! (`mlconf-space`), the cluster simulator (`mlconf-sim`), and the tuners
//! (`mlconf-tuners`):
//!
//! - [`workload`] — the evaluation suite: seven jobs (sparse logistic
//!   regression, matrix factorization, LDA, MLP, CNN, word2vec, a dense
//!   LM) spanning compute-, network-, and memory-bound regimes.
//! - [`convergence`] — the statistical-efficiency model mapping global
//!   batch size and gradient staleness to epochs-to-target (critical-
//!   batch-size law + staleness penalty + run-to-run noise).
//! - [`tunespace`] — the standard 9-knob tuning space and its mapping to
//!   simulator run configurations.
//! - [`objective`] — time-to-accuracy / cost / deadline objectives and
//!   the [`objective::TrialOutcome`] record.
//! - [`evaluator`] — [`evaluator::ConfigEvaluator`], the deterministic
//!   noisy black-box function tuners optimize.
//!
//! # Examples
//!
//! ```
//! use mlconf_workloads::evaluator::ConfigEvaluator;
//! use mlconf_workloads::objective::Objective;
//! use mlconf_workloads::tunespace::default_config;
//! use mlconf_workloads::workload::mlp_mnist;
//!
//! let ev = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 16, 42);
//! let outcome = ev.evaluate(&default_config(16), 0);
//! assert!(outcome.is_ok());
//! println!("default config reaches target in {:.0}s", outcome.tta_secs);
//! ```

pub mod convergence;
pub mod evaluator;
pub mod objective;
pub mod tunespace;
pub mod workload;

pub use convergence::ConvergenceModel;
pub use evaluator::ConfigEvaluator;
pub use objective::{Objective, TrialOutcome};
pub use tunespace::{default_config, standard_space, to_run_config};
pub use workload::{suite, Workload};
