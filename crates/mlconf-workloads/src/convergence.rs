//! Statistical-efficiency model: how many epochs a job needs to reach its
//! target quality as a function of the *system* configuration.
//!
//! Two well-documented effects connect system knobs to convergence:
//!
//! - **Critical batch size** — steps-to-target follows
//!   `S(B) = S_min · (1 + B_crit / B)`, so epochs-to-target
//!   `E(B) = S(B) · B / N` grow linearly in `B` once `B ≫ B_crit`
//!   (diminishing returns of large batches).
//! - **Staleness penalty** — asynchronous and stale-synchronous execution
//!   applies gradients computed on old models; to first order each step of
//!   average staleness inflates epochs by a constant factor.
//!
//! Together with the simulator's throughput these yield time-to-accuracy,
//! the objective the tuner minimizes.

use mlconf_util::dist::LogNormal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Convergence parameters of one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceModel {
    /// Asymptotic number of optimization steps to target at infinite
    /// batch size.
    pub min_steps: f64,
    /// Critical batch size: below it, bigger batches are nearly free;
    /// above it, they buy little.
    pub critical_batch: f64,
    /// Multiplicative epoch inflation per step of average gradient
    /// staleness.
    pub staleness_penalty: f64,
    /// Coefficient of variation of run-to-run noise on epochs-to-target.
    pub noise_cv: f64,
}

impl ConvergenceModel {
    /// Creates a model, validating parameters.
    ///
    /// # Panics
    ///
    /// Panics if `min_steps` or `critical_batch` are non-positive, or the
    /// penalty/noise terms are negative.
    pub fn new(min_steps: f64, critical_batch: f64, staleness_penalty: f64, noise_cv: f64) -> Self {
        assert!(min_steps > 0.0, "min_steps must be positive");
        assert!(critical_batch > 0.0, "critical_batch must be positive");
        assert!(staleness_penalty >= 0.0, "staleness_penalty negative");
        assert!(noise_cv >= 0.0, "noise_cv negative");
        ConvergenceModel {
            min_steps,
            critical_batch,
            staleness_penalty,
            noise_cv,
        }
    }

    /// Expected optimization steps to reach target at global batch `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn steps_to_target(&self, b: u64) -> f64 {
        assert!(b > 0, "zero batch");
        self.min_steps * (1.0 + self.critical_batch / b as f64)
    }

    /// Expected training samples to reach target at global batch `b` and
    /// mean staleness `staleness_steps`.
    pub fn samples_to_target(&self, b: u64, staleness_steps: f64) -> f64 {
        assert!(staleness_steps >= 0.0, "negative staleness");
        let penalty = 1.0 + self.staleness_penalty * staleness_steps;
        self.steps_to_target(b) * b as f64 * penalty
    }

    /// Expected epochs to target for a dataset of `dataset_samples`.
    pub fn epochs_to_target(&self, b: u64, staleness_steps: f64, dataset_samples: u64) -> f64 {
        assert!(dataset_samples > 0, "empty dataset");
        self.samples_to_target(b, staleness_steps) / dataset_samples as f64
    }

    /// Draws a noisy epochs-to-target observation (deterministic when
    /// `noise_cv == 0`).
    pub fn sample_epochs<R: Rng + ?Sized>(
        &self,
        b: u64,
        staleness_steps: f64,
        dataset_samples: u64,
        rng: &mut R,
    ) -> f64 {
        let mean = self.epochs_to_target(b, staleness_steps, dataset_samples);
        if self.noise_cv == 0.0 {
            mean
        } else {
            mean * LogNormal::unit_mean(self.noise_cv)
                .expect("validated cv")
                .sample(rng)
        }
    }

    /// Generates a synthetic learning curve — loss after each epoch — of
    /// the canonical power-law form `floor + (init − floor)·(1 + t/τ)^(−α)`,
    /// scaled so the target loss is hit at `epochs_to_target`. Useful for
    /// plotting and for partial-training tuners (successive halving).
    pub fn learning_curve(
        &self,
        b: u64,
        staleness_steps: f64,
        dataset_samples: u64,
        epochs: usize,
    ) -> Vec<f64> {
        const INIT_LOSS: f64 = 1.0;
        const FLOOR: f64 = 0.05;
        const TARGET: f64 = 0.10;
        const ALPHA: f64 = 1.4;
        let e_target = self.epochs_to_target(b, staleness_steps, dataset_samples);
        // Solve for tau so the curve crosses TARGET at e_target.
        let ratio = ((INIT_LOSS - FLOOR) / (TARGET - FLOOR)).powf(1.0 / ALPHA);
        let tau = e_target / (ratio - 1.0);
        (1..=epochs)
            .map(|t| FLOOR + (INIT_LOSS - FLOOR) * (1.0 + t as f64 / tau).powf(-ALPHA))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlconf_util::rng::Pcg64;

    fn model() -> ConvergenceModel {
        ConvergenceModel::new(2000.0, 512.0, 0.15, 0.0)
    }

    #[test]
    fn steps_shrink_with_batch_but_saturate() {
        let m = model();
        let s32 = m.steps_to_target(32);
        let s512 = m.steps_to_target(512);
        let s8192 = m.steps_to_target(8192);
        assert!(s32 > s512 && s512 > s8192);
        // Saturation: below min_steps never.
        assert!(s8192 >= m.min_steps);
        assert!(s8192 < m.min_steps * 1.1);
        // At the critical batch exactly 2x the asymptote.
        assert_eq!(m.steps_to_target(512), 2.0 * m.min_steps);
    }

    #[test]
    fn samples_grow_with_batch_beyond_critical() {
        let m = model();
        // In the large-batch regime, samples-to-target grows ~linearly.
        let s1 = m.samples_to_target(2048, 0.0);
        let s2 = m.samples_to_target(8192, 0.0);
        assert!(s2 > s1 * 2.0, "large batches must cost samples");
        // In the small-batch regime, nearly flat.
        let t1 = m.samples_to_target(16, 0.0);
        let t2 = m.samples_to_target(64, 0.0);
        assert!(t2 < t1 * 1.4);
    }

    #[test]
    fn staleness_inflates_epochs() {
        let m = model();
        let fresh = m.epochs_to_target(512, 0.0, 1_000_000);
        let stale = m.epochs_to_target(512, 2.0, 1_000_000);
        assert!((stale / fresh - 1.3).abs() < 1e-9, "2 steps × 0.15 = 30%");
    }

    #[test]
    fn noise_free_sampling_is_exact() {
        let m = model();
        let mut rng = Pcg64::seed(1);
        assert_eq!(
            m.sample_epochs(512, 0.0, 1_000_000, &mut rng),
            m.epochs_to_target(512, 0.0, 1_000_000)
        );
    }

    #[test]
    fn noisy_sampling_centers_on_mean() {
        let m = ConvergenceModel::new(2000.0, 512.0, 0.15, 0.2);
        let mut rng = Pcg64::seed(2);
        let mean = m.epochs_to_target(512, 0.0, 1_000_000);
        let avg: f64 = (0..20_000)
            .map(|_| m.sample_epochs(512, 0.0, 1_000_000, &mut rng))
            .sum::<f64>()
            / 20_000.0;
        assert!((avg / mean - 1.0).abs() < 0.02, "avg {avg} mean {mean}");
    }

    #[test]
    fn learning_curve_monotone_and_crosses_target() {
        let m = model();
        let e_target = m.epochs_to_target(512, 0.0, 1_000_000).ceil() as usize;
        let curve = m.learning_curve(512, 0.0, 1_000_000, e_target + 10);
        // Monotone decreasing.
        for w in curve.windows(2) {
            assert!(w[1] < w[0]);
        }
        // Crosses 0.10 within one epoch of the predicted target.
        let crossing = curve.iter().position(|&l| l <= 0.10).unwrap();
        assert!(
            (crossing as f64 + 1.0 - e_target as f64).abs() <= 1.5,
            "crossed at {} want ~{e_target}",
            crossing + 1
        );
    }

    #[test]
    #[should_panic(expected = "zero batch")]
    fn rejects_zero_batch() {
        model().steps_to_target(0);
    }

    #[test]
    #[should_panic(expected = "min_steps")]
    fn rejects_bad_params() {
        ConvergenceModel::new(0.0, 1.0, 0.0, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn epochs_positive_and_monotone_in_staleness(
            b in 1u64..100_000,
            s1 in 0.0f64..10.0,
            extra in 0.0f64..10.0,
        ) {
            let m = ConvergenceModel::new(1000.0, 256.0, 0.1, 0.0);
            let e1 = m.epochs_to_target(b, s1, 1_000_000);
            let e2 = m.epochs_to_target(b, s1 + extra, 1_000_000);
            prop_assert!(e1 > 0.0);
            prop_assert!(e2 >= e1);
        }

        #[test]
        fn steps_monotone_decreasing_in_batch(b in 1u64..1_000_000) {
            let m = ConvergenceModel::new(1000.0, 256.0, 0.1, 0.0);
            prop_assert!(m.steps_to_target(b) >= m.steps_to_target(b + 1));
        }
    }
}
