//! The workload suite: six distributed-ML training jobs spanning the
//! compute-, network-, and memory-bound regimes (characterized by
//! experiment E1).
//!
//! Each workload pairs the simulator-facing [`JobSpec`] (FLOPs, bytes,
//! sparsity) with a [`ConvergenceModel`] (critical batch size, staleness
//! sensitivity) and a descriptive regime label. The numbers are synthetic
//! but shaped after the public characteristics of the classic benchmarks
//! they are named for.

use mlconf_sim::job::JobSpec;
use serde::{Deserialize, Serialize};

use crate::convergence::ConvergenceModel;

/// The resource regime a workload predominantly stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// Gradient computation dominates.
    ComputeBound,
    /// Gradient/model traffic dominates.
    NetworkBound,
    /// Model state pressures node memory.
    MemoryBound,
    /// No single dominant resource.
    Balanced,
}

impl Regime {
    /// Stable lowercase label.
    pub fn name(&self) -> &'static str {
        match self {
            Regime::ComputeBound => "compute-bound",
            Regime::NetworkBound => "network-bound",
            Regime::MemoryBound => "memory-bound",
            Regime::Balanced => "balanced",
        }
    }
}

/// A tunable distributed-training workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    job: JobSpec,
    convergence: ConvergenceModel,
    regime: Regime,
    description: String,
}

impl Workload {
    /// Creates a workload.
    pub fn new(
        job: JobSpec,
        convergence: ConvergenceModel,
        regime: Regime,
        description: impl Into<String>,
    ) -> Self {
        Workload {
            job,
            convergence,
            regime,
            description: description.into(),
        }
    }

    /// The workload's name (the job name).
    pub fn name(&self) -> &str {
        self.job.name()
    }

    /// Simulator-facing resource demands.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }

    /// Convergence (statistical-efficiency) model.
    pub fn convergence(&self) -> &ConvergenceModel {
        &self.convergence
    }

    /// Dominant resource regime.
    pub fn regime(&self) -> Regime {
        self.regime
    }

    /// Human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }
}

/// Sparse logistic regression on a click-through dataset
/// (Criteo-shaped): a huge hashed feature space touched sparsely —
/// network-light on PS, brutal on all-reduce.
pub fn logreg_criteo() -> Workload {
    Workload::new(
        JobSpec::new(
            "logreg-criteo",
            50_000_000, // 50M hashed weights
            2e5,        // cheap per-sample compute
            400.0,      // compact hashed sample
            200.0,
            0.0005, // ~25k non-zeros per minibatch push
            45_000_000,
        ),
        ConvergenceModel::new(12_000.0, 2048.0, 0.08, 0.05),
        Regime::Balanced,
        "sparse logistic regression for click-through-rate prediction",
    )
}

/// Matrix factorization on a ratings dataset (Netflix-shaped): medium
/// sparse model, light compute.
pub fn mf_netflix() -> Workload {
    Workload::new(
        JobSpec::new(
            "mf-netflix",
            25_000_000, // (users + items) × rank
            8e4,
            24.0, // (user, item, rating)
            64.0,
            0.002,
            100_000_000,
        ),
        ConvergenceModel::new(30_000.0, 4096.0, 0.12, 0.05),
        Regime::Balanced,
        "low-rank matrix factorization for recommendation",
    )
}

/// Topic modelling (LDA on a news corpus): moderately sparse updates,
/// moderate compute per document.
pub fn lda_news() -> Workload {
    Workload::new(
        JobSpec::new(
            "lda-news", 10_000_000, // vocab × topics
            5e6,        // Gibbs/VI per-doc work
            2_000.0, 4_000.0, 0.01, 8_000_000,
        ),
        ConvergenceModel::new(4_000.0, 1024.0, 0.10, 0.05),
        Regime::ComputeBound,
        "latent Dirichlet allocation topic model",
    )
}

/// A small dense MLP (MNIST-shaped): the quickstart workload — small
/// model, small data, everything fits everywhere.
pub fn mlp_mnist() -> Workload {
    Workload::new(
        JobSpec::new(
            "mlp-mnist",
            2_000_000,
            4e6,
            3_136.0, // 28×28 floats
            8_000.0,
            1.0,
            60_000,
        ),
        ConvergenceModel::new(2_000.0, 512.0, 0.15, 0.05),
        Regime::Balanced,
        "dense multilayer perceptron on a small image dataset",
    )
}

/// A convolutional network (CIFAR/ResNet-shaped): dense 25M-parameter
/// model with heavy per-sample compute.
pub fn cnn_cifar() -> Workload {
    Workload::new(
        JobSpec::new(
            "cnn-cifar",
            25_000_000,
            6e8, // convolutions dominate
            12_288.0,
            200_000.0, // activations are the memory hog
            1.0,
            50_000,
        ),
        ConvergenceModel::new(15_000.0, 1024.0, 0.20, 0.05),
        Regime::ComputeBound,
        "residual convolutional network for image classification",
    )
}

/// Word embeddings on a large corpus (word2vec-shaped): a 1.5B-parameter
/// embedding table (3M vocab × 500 dims) updated sparsely. The 6 GB
/// dense model plus 12 GB of optimizer state creates real memory
/// cliffs: single parameter servers and all-reduce deployments OOM on
/// small machine types.
pub fn w2v_wiki() -> Workload {
    Workload::new(
        JobSpec::new(
            "w2v-wiki",
            1_500_000_000,
            1e5,
            80.0, // a context window of token ids
            64.0,
            0.001,
            1_000_000_000,
        ),
        ConvergenceModel::new(200_000.0, 8192.0, 0.05, 0.05),
        Regime::MemoryBound,
        "skip-gram word embeddings over a web-scale corpus",
    )
}

/// A dense mid-size language-model-shaped job: dense 150M parameters and
/// real compute — the network-bound stress case for all-reduce vs PS.
pub fn dense_lm() -> Workload {
    Workload::new(
        JobSpec::new(
            "dense-lm",
            150_000_000,
            2e8,
            4_096.0,
            100_000.0,
            1.0,
            30_000_000,
        ),
        ConvergenceModel::new(50_000.0, 2048.0, 0.25, 0.05),
        Regime::NetworkBound,
        "dense sequence model with a large fully-shared parameter set",
    )
}

/// The full evaluation suite (E1's Table 1 rows, in order).
pub fn suite() -> Vec<Workload> {
    vec![
        logreg_criteo(),
        mf_netflix(),
        lda_news(),
        mlp_mnist(),
        cnn_cifar(),
        w2v_wiki(),
        dense_lm(),
    ]
}

/// Looks up a suite workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_unique_names() {
        let s = suite();
        assert!(s.len() >= 6);
        let mut names: Vec<&str> = s.iter().map(|w| w.name()).collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("cnn-cifar").is_some());
        assert!(by_name("mlp-mnist").is_some());
        assert!(by_name("bogus").is_none());
    }

    #[test]
    fn suite_spans_regimes() {
        let s = suite();
        let has = |r: Regime| s.iter().any(|w| w.regime() == r);
        assert!(has(Regime::ComputeBound));
        assert!(has(Regime::NetworkBound));
        assert!(has(Regime::MemoryBound));
    }

    #[test]
    fn sparse_workloads_have_small_gradients() {
        let lr = logreg_criteo();
        assert!(lr.job().gradient_bytes() < lr.job().model_bytes() / 100.0);
        let dense = dense_lm();
        assert_eq!(dense.job().gradient_bytes(), dense.job().model_bytes());
    }

    #[test]
    fn descriptions_nonempty() {
        for w in suite() {
            assert!(!w.description().is_empty(), "{}", w.name());
            assert!(!w.regime().name().is_empty());
        }
    }
}
