//! The evaluator: the function-under-optimization handed to tuners.
//!
//! `ConfigEvaluator` owns a workload, an objective, and the simulation
//! options, and maps `Configuration → TrialOutcome` deterministically in
//! `(base_seed, configuration, repetition)`. Repetitions of the same
//! configuration see different simulator noise and convergence noise —
//! exactly the measurement noise a real cluster would exhibit.

use mlconf_sim::engine::{simulate, SimOptions};
use mlconf_sim::faultplan::FaultKind;
use mlconf_sim::runconfig::{Arch, RunConfig};
use mlconf_sim::scenario::{EnvState, ScenarioScript};
use mlconf_space::config::Configuration;
use mlconf_space::space::ConfigSpace;
use mlconf_util::rng::Pcg64;

use crate::objective::{score, Objective, TrialOutcome, PROVISIONING_SECS};
use crate::tunespace::{standard_space, to_run_config};
use crate::workload::Workload;

/// Evaluates configurations for one workload/objective pair.
#[derive(Debug, Clone)]
pub struct ConfigEvaluator {
    workload: Workload,
    objective: Objective,
    space: ConfigSpace,
    sim_opts: SimOptions,
    base_seed: u64,
    scenario: Option<ScenarioScript>,
    pin_epoch: Option<f64>,
}

impl ConfigEvaluator {
    /// Creates an evaluator over the standard tuning space.
    pub fn new(workload: Workload, objective: Objective, max_nodes: i64, base_seed: u64) -> Self {
        ConfigEvaluator {
            workload,
            objective,
            space: standard_space(max_nodes),
            sim_opts: SimOptions::default(),
            base_seed,
            scenario: None,
            pin_epoch: None,
        }
    }

    /// Replaces the simulation options (e.g. noise-free for oracles).
    pub fn with_sim_options(mut self, opts: SimOptions) -> Self {
        self.sim_opts = opts;
        self
    }

    /// Attaches a scenario script: epoch-tagged evaluations
    /// ([`Self::evaluate_faulted_at`] and friends) see the script's
    /// environment at their epoch instead of the static world. With no
    /// script attached — or whenever the script's state is neutral —
    /// every path is byte-identical to the static evaluator.
    pub fn with_scenario(mut self, scenario: ScenarioScript) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// The attached scenario script, if any.
    pub fn scenario(&self) -> Option<&ScenarioScript> {
        self.scenario.as_ref()
    }

    /// A copy of this evaluator frozen at scenario epoch `epoch_secs`:
    /// every evaluation (tagged or not) sees the environment in force at
    /// that instant. This is how E17's re-tuning sessions optimize
    /// against "the cluster as it is right now".
    ///
    /// # Panics
    ///
    /// Panics if `epoch_secs` is negative or non-finite.
    pub fn pinned_at(mut self, epoch_secs: f64) -> Self {
        assert!(
            epoch_secs >= 0.0 && epoch_secs.is_finite(),
            "pin epoch must be finite and >= 0, got {epoch_secs}"
        );
        self.pin_epoch = Some(epoch_secs);
        self
    }

    /// The scenario environment an evaluation tagged `epoch_secs` sees
    /// (a pin epoch overrides the tag; no scenario means neutral).
    pub fn env_for(&self, epoch_secs: Option<f64>) -> EnvState {
        match (&self.scenario, self.pin_epoch.or(epoch_secs)) {
            (Some(s), Some(t)) => s.env_at(t),
            _ => EnvState::neutral(),
        }
    }

    /// The tuning space configurations must come from.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The workload being tuned.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The objective being minimized.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The base seed (replicates should use different base seeds).
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Evaluates `cfg` as trial number `rep` (repetition index). The same
    /// `(base_seed, cfg, rep)` triple always returns the same outcome.
    pub fn evaluate(&self, cfg: &Configuration, rep: u64) -> TrialOutcome {
        self.evaluate_with_fidelity(cfg, rep, 1.0)
    }

    /// Evaluates `cfg` at a reduced profiling fidelity in `(0, 1]`.
    ///
    /// Fidelity scales the number of simulated steps, so a `0.25`
    /// evaluation costs roughly a quarter of the machine time but
    /// observes a noisier throughput estimate — the resource knob
    /// multi-fidelity tuners (successive halving, Hyperband) exploit.
    ///
    /// # Panics
    ///
    /// Panics if `fidelity` is outside `(0, 1]`.
    pub fn evaluate_with_fidelity(
        &self,
        cfg: &Configuration,
        rep: u64,
        fidelity: f64,
    ) -> TrialOutcome {
        assert!(
            fidelity > 0.0 && fidelity <= 1.0,
            "fidelity must be in (0,1], got {fidelity}"
        );
        self.evaluate_env(cfg, rep, fidelity, &self.env_for(None))
    }

    /// [`Self::evaluate_with_fidelity`] at scenario epoch `epoch_secs`:
    /// the run is simulated under the environment the attached scenario
    /// script has in force at that instant. `None` (or no scenario)
    /// falls back to the static world, byte-identically.
    ///
    /// # Panics
    ///
    /// Panics if `fidelity` is outside `(0, 1]`.
    pub fn evaluate_with_fidelity_at(
        &self,
        cfg: &Configuration,
        rep: u64,
        fidelity: f64,
        epoch_secs: Option<f64>,
    ) -> TrialOutcome {
        assert!(
            fidelity > 0.0 && fidelity <= 1.0,
            "fidelity must be in (0,1], got {fidelity}"
        );
        self.evaluate_env(cfg, rep, fidelity, &self.env_for(epoch_secs))
    }

    /// The shared evaluation core. A neutral `env` is the exact legacy
    /// path: same RNG stream, same draw order, same structs — so
    /// attaching a scenario perturbs nothing until its script actually
    /// shifts the environment.
    fn evaluate_env(
        &self,
        cfg: &Configuration,
        rep: u64,
        fidelity: f64,
        env: &EnvState,
    ) -> TrialOutcome {
        let stream = fnv1a(cfg.key().as_bytes()) ^ rep.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = Pcg64::with_stream(self.base_seed, stream);
        match to_run_config(cfg) {
            Ok(rc) => {
                let rc = if env.is_neutral() {
                    rc
                } else {
                    env_adjusted(&rc, env)
                };
                let mut opts = if env.is_neutral() {
                    self.sim_opts.clone()
                } else {
                    self.sim_opts.with_env(env)
                };
                if fidelity < 1.0 {
                    let full_measured = opts.steps_per_worker - opts.warmup_steps;
                    let measured = ((full_measured as f64 * fidelity).round() as u32).max(5);
                    opts.steps_per_worker = opts.warmup_steps + measured;
                }
                let sim = simulate(self.workload.job(), &rc, &opts, &mut rng);
                score(self.objective, &self.workload, &sim, &mut rng)
            }
            Err(e) => TrialOutcome::failed(e.to_string(), PROVISIONING_SECS),
        }
    }

    /// Evaluates `cfg` under an injected fault from a
    /// [`FaultPlan`](mlconf_sim::faultplan::FaultPlan) schedule.
    ///
    /// - `None` — identical to [`Self::evaluate_with_fidelity`].
    /// - `Straggle` — the attempt is simulated under the scaled
    ///   straggler model (injected *through the engine*: the corrupted
    ///   measurement comes from actually noisier simulated steps).
    /// - `Oom` — the trial dies at startup: a failed outcome charging
    ///   only provisioning cost.
    /// - `Crash` — the attempt dies `at_frac` of the way through the
    ///   run: a failed outcome charging provisioning plus that fraction
    ///   of the run's machine cost.
    /// - `Hang` — evaluated cleanly; hang semantics (kill at the cutoff,
    ///   right-censor the observation) live in the trial executor, which
    ///   owns the timeout.
    ///
    /// Determinism: the same `(base_seed, cfg, rep, fidelity, fault)`
    /// always produces the same outcome.
    ///
    /// # Panics
    ///
    /// Panics if `fidelity` is outside `(0, 1]` or the fault's parameter
    /// is out of range.
    pub fn evaluate_faulted(
        &self,
        cfg: &Configuration,
        rep: u64,
        fidelity: f64,
        fault: Option<&FaultKind>,
    ) -> TrialOutcome {
        self.evaluate_faulted_at(cfg, rep, fidelity, fault, None)
    }

    /// [`Self::evaluate_faulted`] at scenario epoch `epoch_secs`: the
    /// attempt (clean, straggle-corrupted, or crash-costed) is measured
    /// under the environment in force at that instant. `None` (or no
    /// scenario) is byte-identical to [`Self::evaluate_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `fidelity` is outside `(0, 1]` or the fault's parameter
    /// is out of range.
    pub fn evaluate_faulted_at(
        &self,
        cfg: &Configuration,
        rep: u64,
        fidelity: f64,
        fault: Option<&FaultKind>,
        epoch_secs: Option<f64>,
    ) -> TrialOutcome {
        let Some(fault) = fault else {
            return self.evaluate_with_fidelity_at(cfg, rep, fidelity, epoch_secs);
        };
        fault.validate();
        match fault {
            FaultKind::Hang => self.evaluate_with_fidelity_at(cfg, rep, fidelity, epoch_secs),
            FaultKind::Straggle { .. } => {
                let straggler = fault
                    .straggler_override()
                    .expect("straggle fault has a straggler model");
                let mut noisy = self.clone();
                noisy.sim_opts.straggler = straggler;
                noisy.evaluate_with_fidelity_at(cfg, rep, fidelity, epoch_secs)
            }
            FaultKind::Oom => {
                let pn = self.price_nodes_of(cfg);
                TrialOutcome::failed("injected: node OOM at startup", PROVISIONING_SECS * pn)
            }
            FaultKind::Crash { at_frac } => {
                // Charge what the dead attempt actually burned: full
                // provisioning plus `at_frac` of the profiling run the
                // clean evaluation would have cost.
                let clean = self.evaluate_with_fidelity_at(cfg, rep, fidelity, epoch_secs);
                let pn = self.price_nodes_of(cfg);
                let provisioning = PROVISIONING_SECS * pn;
                let run = (clean.search_cost_machine_secs - provisioning).max(0.0);
                TrialOutcome::failed(
                    "injected: node crash mid-measurement",
                    provisioning + at_frac * run,
                )
            }
        }
    }

    /// Price-weighted node count of `cfg`'s cluster (the search-cost
    /// unit used by `score`); 1.0 when the configuration is unmappable.
    fn price_nodes_of(&self, cfg: &Configuration) -> f64 {
        const BASE_PRICE_PER_HOUR: f64 = 0.10;
        to_run_config(cfg)
            .map(|rc| rc.cluster().price_per_hour() / BASE_PRICE_PER_HOUR)
            .unwrap_or(1.0)
    }

    /// Noise-free expected objective of `cfg`: deterministic simulator
    /// (no stragglers/jitter) and mean convergence. Used by oracles and
    /// the E7 model-accuracy experiment as "ground truth".
    pub fn true_objective(&self, cfg: &Configuration) -> Option<f64> {
        self.true_objective_at(cfg, None)
    }

    /// [`Self::true_objective`] at scenario epoch `epoch_secs`: the
    /// noise-free ground truth of `cfg` under the environment in force
    /// at that instant — what E17 scores deployed configurations (and
    /// per-segment oracles) against. `None` (or no scenario) matches
    /// [`Self::true_objective`] exactly.
    pub fn true_objective_at(&self, cfg: &Configuration, epoch_secs: Option<f64>) -> Option<f64> {
        let env = self.env_for(epoch_secs);
        let rc = to_run_config(cfg).ok()?;
        let rc = if env.is_neutral() {
            rc
        } else {
            env_adjusted(&rc, &env)
        };
        let mut opts = if env.is_neutral() {
            self.sim_opts.clone()
        } else {
            self.sim_opts.with_env(&env)
        };
        opts.straggler = mlconf_sim::straggler::StragglerModel::none();
        let mut rng = Pcg64::with_stream(self.base_seed, fnv1a(cfg.key().as_bytes()));
        let sim = simulate(self.workload.job(), &rc, &opts, &mut rng);
        if !sim.is_feasible() {
            return None;
        }
        // Mean convergence: bypass the noisy sampler.
        let epochs = self.workload.convergence().epochs_to_target(
            sim.global_batch(),
            sim.avg_staleness_steps(),
            self.workload.job().dataset_samples(),
        );
        let samples = epochs * self.workload.job().dataset_samples() as f64;
        let tta = samples / sim.throughput();
        Some(match self.objective {
            Objective::TimeToAccuracy => tta,
            Objective::CostToAccuracy => tta / 3600.0 * sim.cluster_price_per_hour(),
            Objective::DeadlineCost {
                deadline_secs,
                penalty,
            } => {
                let cost = tta / 3600.0 * sim.cluster_price_per_hour();
                if tta <= deadline_secs {
                    cost
                } else {
                    cost * (1.0 + penalty * (tta / deadline_secs - 1.0))
                }
            }
        })
    }
}

/// Rebuilds `rc` under scenario environment `env`: the per-core compute
/// rate scales with `compute_scale`, the cluster gains/loses
/// `node_delta` nodes (clamped to stay a valid cluster), and a
/// parameter-server architecture's server count is clamped below the new
/// node count. Congestion (`net_scale`) lands on the network model via
/// [`SimOptions::with_env`], not here.
fn env_adjusted(rc: &RunConfig, env: &EnvState) -> RunConfig {
    let cluster = rc.cluster();
    let machine = if env.compute_scale == 1.0 {
        cluster.machine().clone()
    } else {
        cluster.machine().with_compute_scaled(env.compute_scale)
    };
    let nodes = (i64::from(cluster.num_nodes()) + env.node_delta).clamp(2, 4096) as u32;
    let cluster = cluster.with_machine(machine).resized(nodes);
    let arch = match rc.arch() {
        Arch::ParameterServer { num_ps, sync } => Arch::ParameterServer {
            num_ps: num_ps.clamp(1, nodes - 1),
            sync,
        },
        a => a,
    };
    RunConfig::new(
        cluster,
        arch,
        rc.batch_per_worker(),
        rc.threads_per_worker(),
        rc.compress_gradients(),
    )
    .expect("env-adjusted run config stays valid")
}

/// FNV-1a hash — stable across platforms and Rust versions, unlike
/// `DefaultHasher`, so trial seeds are reproducible everywhere.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::mlp_mnist;

    fn evaluator() -> ConfigEvaluator {
        ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 16, 42)
    }

    #[test]
    fn deterministic_per_triple() {
        let ev = evaluator();
        let cfg = crate::tunespace::default_config(16);
        let a = ev.evaluate(&cfg, 0);
        let b = ev.evaluate(&cfg, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn repetitions_vary_but_cluster_around_truth() {
        let ev = evaluator();
        let cfg = crate::tunespace::default_config(16);
        let outs: Vec<f64> = (0..8)
            .map(|rep| ev.evaluate(&cfg, rep).objective.unwrap())
            .collect();
        // Not all identical (noise present)...
        assert!(outs.windows(2).any(|w| w[0] != w[1]));
        // ...but within a band around the noise-free truth.
        let truth = ev.true_objective(&cfg).unwrap();
        for o in outs {
            assert!(
                (o / truth - 1.0).abs() < 0.6,
                "noisy {o} too far from truth {truth}"
            );
        }
    }

    #[test]
    fn different_configs_different_objectives() {
        let ev = evaluator();
        let mut rng = Pcg64::seed(7);
        let a = ev.space().sample(&mut rng).unwrap();
        let mut b = ev.space().sample(&mut rng).unwrap();
        while b == a {
            b = ev.space().sample(&mut rng).unwrap();
        }
        let oa = ev.evaluate(&a, 0);
        let ob = ev.evaluate(&b, 0);
        // Extremely unlikely to coincide exactly.
        assert_ne!(oa.objective, ob.objective);
    }

    #[test]
    fn sampled_configs_usually_evaluate_ok() {
        let ev = evaluator();
        let mut rng = Pcg64::seed(8);
        let mut ok = 0;
        for _ in 0..50 {
            let cfg = ev.space().sample(&mut rng).unwrap();
            if ev.evaluate(&cfg, 0).is_ok() {
                ok += 1;
            }
        }
        // Memory cliffs exist (that is the point) but most of the space
        // must be viable for tuning to be meaningful.
        assert!(ok >= 30, "only {ok}/50 sampled configs were feasible");
    }

    #[test]
    fn true_objective_is_noise_free_and_stable() {
        let ev = evaluator();
        let cfg = crate::tunespace::default_config(16);
        assert_eq!(ev.true_objective(&cfg), ev.true_objective(&cfg));
    }

    #[test]
    fn low_fidelity_is_cheaper_and_consistent() {
        let ev = evaluator();
        let cfg = crate::tunespace::default_config(16);
        let full = ev.evaluate_with_fidelity(&cfg, 0, 1.0);
        let quarter = ev.evaluate_with_fidelity(&cfg, 0, 0.25);
        assert!(quarter.is_ok());
        // Cheaper to run...
        assert!(
            quarter.search_cost_machine_secs < full.search_cost_machine_secs,
            "quarter {} !< full {}",
            quarter.search_cost_machine_secs,
            full.search_cost_machine_secs
        );
        // ...but measuring the same quantity, within noise.
        let f = full.objective.unwrap();
        let q = quarter.objective.unwrap();
        assert!((q / f - 1.0).abs() < 0.5, "quarter {q} vs full {f}");
        // Full fidelity equals the plain evaluate path.
        assert_eq!(full, ev.evaluate(&cfg, 0));
    }

    #[test]
    #[should_panic(expected = "fidelity")]
    fn rejects_bad_fidelity() {
        let ev = evaluator();
        ev.evaluate_with_fidelity(&crate::tunespace::default_config(16), 0, 0.0);
    }

    #[test]
    fn faulted_none_matches_clean_path() {
        let ev = evaluator();
        let cfg = crate::tunespace::default_config(16);
        assert_eq!(
            ev.evaluate_faulted(&cfg, 0, 1.0, None),
            ev.evaluate_with_fidelity(&cfg, 0, 1.0)
        );
        assert_eq!(
            ev.evaluate_faulted(&cfg, 0, 1.0, Some(&FaultKind::Hang)),
            ev.evaluate_with_fidelity(&cfg, 0, 1.0)
        );
    }

    #[test]
    fn injected_oom_fails_cheaply() {
        let ev = evaluator();
        let cfg = crate::tunespace::default_config(16);
        let clean = ev.evaluate(&cfg, 0);
        let oom = ev.evaluate_faulted(&cfg, 0, 1.0, Some(&FaultKind::Oom));
        assert!(!oom.is_ok());
        assert!(oom.failure.as_deref().unwrap().contains("OOM"));
        assert!(
            oom.search_cost_machine_secs < clean.search_cost_machine_secs,
            "an OOM at startup must cost less than the full run"
        );
        assert!(oom.search_cost_machine_secs > 0.0);
    }

    #[test]
    fn injected_crash_charges_partial_run() {
        let ev = evaluator();
        let cfg = crate::tunespace::default_config(16);
        let clean = ev.evaluate(&cfg, 0);
        let early = ev.evaluate_faulted(&cfg, 0, 1.0, Some(&FaultKind::Crash { at_frac: 0.2 }));
        let late = ev.evaluate_faulted(&cfg, 0, 1.0, Some(&FaultKind::Crash { at_frac: 0.9 }));
        assert!(!early.is_ok() && !late.is_ok());
        assert!(early.search_cost_machine_secs < late.search_cost_machine_secs);
        assert!(late.search_cost_machine_secs < clean.search_cost_machine_secs);
        // Deterministic in the full key.
        assert_eq!(
            early,
            ev.evaluate_faulted(&cfg, 0, 1.0, Some(&FaultKind::Crash { at_frac: 0.2 }))
        );
    }

    #[test]
    fn injected_straggle_goes_through_engine() {
        let ev = evaluator();
        let cfg = crate::tunespace::default_config(16);
        let clean = ev.evaluate(&cfg, 0);
        let corrupted =
            ev.evaluate_faulted(&cfg, 0, 1.0, Some(&FaultKind::Straggle { severity: 8.0 }));
        assert!(corrupted.is_ok(), "straggle corrupts, it does not kill");
        // Heavier stragglers must slow the measured run down.
        assert!(
            corrupted.throughput < clean.throughput,
            "straggle-corrupted throughput {} !< clean {}",
            corrupted.throughput,
            clean.throughput
        );
    }

    #[test]
    fn neutral_scenario_is_byte_identical() {
        use mlconf_sim::scenario::ScenarioScript;
        let ev = evaluator();
        let quiet = ev
            .clone()
            .with_scenario(ScenarioScript::scripted("stationary", 0).unwrap());
        let cfg = crate::tunespace::default_config(16);
        // Every path — plain, fidelity, faulted, epoch-tagged, truth —
        // must match the scenario-free evaluator bit for bit.
        assert_eq!(ev.evaluate(&cfg, 0), quiet.evaluate(&cfg, 0));
        assert_eq!(
            ev.evaluate_with_fidelity(&cfg, 1, 0.25),
            quiet.evaluate_with_fidelity_at(&cfg, 1, 0.25, Some(12_345.0))
        );
        assert_eq!(
            ev.evaluate_faulted(&cfg, 0, 1.0, Some(&FaultKind::Crash { at_frac: 0.5 })),
            quiet.evaluate_faulted_at(
                &cfg,
                0,
                1.0,
                Some(&FaultKind::Crash { at_frac: 0.5 }),
                Some(9_999.0)
            )
        );
        assert_eq!(
            ev.true_objective(&cfg),
            quiet.true_objective_at(&cfg, Some(5_000.0))
        );
    }

    #[test]
    fn scenario_epochs_shift_ground_truth() {
        use mlconf_sim::scenario::{EnvState, ScenarioEvent, ScenarioScript};
        let mut script = ScenarioScript::stationary("slowdown");
        script.push(ScenarioEvent {
            at_secs: 1_000.0,
            env: EnvState {
                compute_scale: 0.3,
                ..EnvState::neutral()
            },
        });
        // A compute-heavy workload, so the compute cut dominates.
        let ev = ConfigEvaluator::new(
            crate::workload::cnn_cifar(),
            Objective::TimeToAccuracy,
            16,
            42,
        )
        .with_scenario(script);
        let cfg = crate::tunespace::default_config(16);
        let before = ev.true_objective_at(&cfg, Some(0.0)).unwrap();
        let after = ev.true_objective_at(&cfg, Some(2_000.0)).unwrap();
        assert!(
            after > before * 1.2,
            "a 70% compute cut must slow time-to-accuracy: {before} -> {after}"
        );
        // Untagged evaluations still see the static world.
        assert_eq!(ev.true_objective(&cfg).unwrap(), before);
        // A pinned evaluator freezes the epoch for every path.
        let pinned = ev.clone().pinned_at(2_000.0);
        assert_eq!(pinned.true_objective(&cfg).unwrap(), after);
        assert_eq!(pinned.true_objective_at(&cfg, Some(0.0)).unwrap(), after);
    }

    #[test]
    fn preemption_shrinks_the_cluster_but_stays_valid() {
        use mlconf_sim::scenario::{EnvState, ScenarioEvent, ScenarioScript};
        let mut script = ScenarioScript::stationary("wave");
        script.push(ScenarioEvent {
            at_secs: 10.0,
            env: EnvState {
                node_delta: -1_000,
                ..EnvState::neutral()
            },
        });
        let ev = evaluator().with_scenario(script);
        let cfg = crate::tunespace::default_config(16);
        // Losing far more nodes than exist clamps to a 2-node cluster
        // rather than panicking; the evaluation still completes.
        let out = ev.evaluate_with_fidelity_at(&cfg, 0, 1.0, Some(100.0));
        assert!(out.objective.is_some() || out.failure.is_some());
        let truth = ev.true_objective_at(&cfg, Some(100.0));
        let clean = ev.true_objective_at(&cfg, Some(0.0));
        if let (Some(t), Some(c)) = (truth, clean) {
            assert!(t > c, "fewer nodes must be slower: {c} -> {t}");
        }
    }

    #[test]
    fn congestion_flows_through_the_network_model() {
        use mlconf_sim::scenario::{EnvState, ScenarioEvent, ScenarioScript};
        let mut script = ScenarioScript::stationary("congested");
        script.push(ScenarioEvent {
            at_secs: 0.0,
            env: EnvState {
                net_scale: 0.15,
                ..EnvState::neutral()
            },
        });
        let ev = evaluator().with_scenario(script);
        let cfg = crate::tunespace::default_config(16);
        let clear = ev.true_objective_at(&cfg, None).unwrap();
        let jammed = ev.true_objective_at(&cfg, Some(1.0)).unwrap();
        assert!(
            jammed > clear,
            "an 85% bandwidth cut must hurt: {clear} -> {jammed}"
        );
    }

    #[test]
    fn fnv_distinguishes_keys() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"a"));
        // Pinned value so the hash (and thus all experiment seeds) never
        // silently changes.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }
}
