//! The standard tuning space for distributed-ML system configuration and
//! its mapping onto simulator run configurations.
//!
//! The knob set mirrors what operators of parameter-server/all-reduce
//! training systems actually choose: cluster size and machine type, the
//! worker/server split, synchronization discipline and staleness bound,
//! per-worker batch size, thread count, and gradient compression.

use mlconf_sim::cluster::{catalog_names, machine_by_name, ClusterSpec};
use mlconf_sim::runconfig::{Arch, InvalidRunConfig, RunConfig, SyncMode};
use mlconf_space::config::Configuration;
use mlconf_space::constraint::Constraint;
use mlconf_space::error::SpaceError;
use mlconf_space::param::ParamValue;
use mlconf_space::space::{ConfigSpace, ConfigSpaceBuilder};

/// Maximum staleness bound exposed to the tuner.
pub const MAX_STALENESS: i64 = 8;

/// Error mapping a tuner configuration onto a simulator run config.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigMapError {
    /// A parameter was missing or mistyped.
    Space(SpaceError),
    /// The machine-type name was not in the catalog.
    UnknownMachine {
        /// The unknown name.
        name: String,
    },
    /// The assembled run configuration failed validation.
    InvalidRun(InvalidRunConfig),
}

impl std::fmt::Display for ConfigMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigMapError::Space(e) => write!(f, "{e}"),
            ConfigMapError::UnknownMachine { name } => write!(f, "unknown machine type `{name}`"),
            ConfigMapError::InvalidRun(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigMapError {}

impl From<SpaceError> for ConfigMapError {
    fn from(e: SpaceError) -> Self {
        ConfigMapError::Space(e)
    }
}

impl From<InvalidRunConfig> for ConfigMapError {
    fn from(e: InvalidRunConfig) -> Self {
        ConfigMapError::InvalidRun(e)
    }
}

/// Builds the standard tuning space for clusters of 2..=`max_nodes`
/// machines.
///
/// Structural constraints keep every sampled configuration mappable:
/// `num_ps < num_nodes` when the architecture is `ps`, and
/// `threads_per_worker ≤ cores(machine_type)`.
///
/// # Panics
///
/// Panics if `max_nodes < 3` (the PS architecture needs a server and two
/// workers to be interesting).
pub fn standard_space(max_nodes: i64) -> ConfigSpace {
    assert!(
        max_nodes >= 3,
        "space needs max_nodes >= 3, got {max_nodes}"
    );
    ConfigSpaceBuilder::new()
        .int("num_nodes", 2, max_nodes)
        .expect("static bounds")
        .categorical("machine_type", catalog_names())
        .expect("catalog non-empty")
        .categorical("arch", ["ps", "allreduce"])
        .expect("static choices")
        .int("num_ps", 1, (max_nodes / 2).max(1))
        .expect("static bounds")
        .categorical("sync", ["bsp", "async", "ssp"])
        .expect("static choices")
        .int("staleness", 1, MAX_STALENESS)
        .expect("static bounds")
        .log_int("batch_per_worker", 8, 4096)
        .expect("static bounds")
        .log_int("threads_per_worker", 1, 36)
        .expect("static bounds")
        .bool("compress")
        .expect("static name")
        .constraint(Constraint::When {
            param: "arch".into(),
            equals: ParamValue::Str("ps".into()),
            then: Box::new(Constraint::LtParam {
                a: "num_ps".into(),
                b: "num_nodes".into(),
            }),
        })
        .constraint(Constraint::custom(
            "threads_per_worker <= cores(machine_type)",
            |cfg| {
                let (Ok(threads), Ok(machine)) = (
                    cfg.get_int("threads_per_worker"),
                    cfg.get_str("machine_type"),
                ) else {
                    return false;
                };
                machine_by_name(machine)
                    .map(|m| threads <= m.cores() as i64)
                    .unwrap_or(false)
            },
        ))
        .build()
        .expect("standard space is statically valid")
}

/// Maps a configuration from [`standard_space`] onto a simulator
/// [`RunConfig`].
///
/// # Errors
///
/// Returns [`ConfigMapError`] if parameters are missing/mistyped, the
/// machine type is unknown, or the assembled run config is invalid (the
/// space's constraints should prevent the last case for sampled points).
pub fn to_run_config(cfg: &Configuration) -> Result<RunConfig, ConfigMapError> {
    let num_nodes = cfg.get_int("num_nodes")? as u32;
    let machine_name = cfg.get_str("machine_type")?;
    let machine = machine_by_name(machine_name).ok_or_else(|| ConfigMapError::UnknownMachine {
        name: machine_name.to_owned(),
    })?;
    let arch = match cfg.get_str("arch")? {
        "allreduce" => Arch::AllReduce,
        _ => {
            let sync = match cfg.get_str("sync")? {
                "async" => SyncMode::Async,
                "ssp" => SyncMode::Ssp {
                    staleness: cfg.get_int("staleness")? as u32,
                },
                _ => SyncMode::Bsp,
            };
            Arch::ParameterServer {
                num_ps: cfg.get_int("num_ps")? as u32,
                sync,
            }
        }
    };
    let rc = RunConfig::new(
        ClusterSpec::new(machine, num_nodes),
        arch,
        cfg.get_int("batch_per_worker")? as u32,
        cfg.get_int("threads_per_worker")? as u32,
        cfg.get_bool("compress")?,
    )?;
    Ok(rc)
}

/// The "operator default" configuration used as the expert baseline in
/// E2: a mid-size BSP parameter-server deployment on the balanced
/// machine type, one server per four nodes, batch 128, all cores.
pub fn default_config(max_nodes: i64) -> Configuration {
    let nodes = (max_nodes / 2).clamp(2, 16);
    Configuration::from_pairs([
        ("num_nodes", ParamValue::Int(nodes)),
        ("machine_type", ParamValue::Str("m4.2xlarge".into())),
        ("arch", ParamValue::Str("ps".into())),
        ("num_ps", ParamValue::Int((nodes / 4).max(1))),
        ("sync", ParamValue::Str("bsp".into())),
        ("staleness", ParamValue::Int(1)),
        ("batch_per_worker", ParamValue::Int(128)),
        ("threads_per_worker", ParamValue::Int(8)),
        ("compress", ParamValue::Bool(false)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlconf_util::rng::Pcg64;

    #[test]
    fn space_dims_and_names() {
        let s = standard_space(32);
        assert_eq!(s.dims(), 9);
        for name in [
            "num_nodes",
            "machine_type",
            "arch",
            "num_ps",
            "sync",
            "staleness",
            "batch_per_worker",
            "threads_per_worker",
            "compress",
        ] {
            assert!(s.param(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn every_sample_maps_to_a_valid_run_config() {
        let s = standard_space(32);
        let mut rng = Pcg64::seed(1);
        for _ in 0..300 {
            let cfg = s.sample(&mut rng).unwrap();
            let rc =
                to_run_config(&cfg).unwrap_or_else(|e| panic!("config {cfg} failed to map: {e}"));
            assert!(rc.num_workers() >= 1);
        }
    }

    #[test]
    fn default_config_is_feasible_and_maps() {
        let s = standard_space(32);
        let cfg = default_config(32);
        s.validate(&cfg).unwrap();
        assert!(s.is_feasible(&cfg).unwrap());
        let rc = to_run_config(&cfg).unwrap();
        assert_eq!(rc.num_servers(), 4);
        assert_eq!(rc.num_workers(), 12);
    }

    #[test]
    fn constraint_blocks_thread_oversubscription() {
        let s = standard_space(16);
        let mut cfg = default_config(16);
        cfg.set("machine_type", ParamValue::Str("m4.large".into()))
            .unwrap(); // 2 cores
        cfg.set("threads_per_worker", ParamValue::Int(8)).unwrap();
        assert!(!s.is_feasible(&cfg).unwrap());
        cfg.set("threads_per_worker", ParamValue::Int(2)).unwrap();
        assert!(s.is_feasible(&cfg).unwrap());
    }

    #[test]
    fn allreduce_ignores_ps_constraint() {
        let s = standard_space(16);
        let mut cfg = default_config(16);
        cfg.set("arch", ParamValue::Str("allreduce".into()))
            .unwrap();
        cfg.set("num_ps", ParamValue::Int(8)).unwrap();
        cfg.set("num_nodes", ParamValue::Int(4)).unwrap();
        // num_ps >= num_nodes, but arch is allreduce so the gate is off.
        assert!(s.is_feasible(&cfg).unwrap());
        let rc = to_run_config(&cfg).unwrap();
        assert_eq!(rc.num_servers(), 0);
    }

    #[test]
    fn ssp_staleness_roundtrips() {
        let mut cfg = default_config(16);
        cfg.set("sync", ParamValue::Str("ssp".into())).unwrap();
        cfg.set("staleness", ParamValue::Int(4)).unwrap();
        let rc = to_run_config(&cfg).unwrap();
        match rc.arch() {
            Arch::ParameterServer {
                sync: SyncMode::Ssp { staleness },
                ..
            } => assert_eq!(staleness, 4),
            other => panic!("wrong arch {other:?}"),
        }
    }

    #[test]
    fn unknown_machine_is_reported() {
        let mut cfg = default_config(16);
        cfg.set("machine_type", ParamValue::Str("q9.mega".into()))
            .unwrap();
        assert!(matches!(
            to_run_config(&cfg),
            Err(ConfigMapError::UnknownMachine { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "max_nodes")]
    fn rejects_tiny_space() {
        standard_space(2);
    }
}
