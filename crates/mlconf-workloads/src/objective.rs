//! Tuning objectives and trial outcomes.
//!
//! A *trial* runs one configuration (in the simulator) and produces the
//! scalar the tuner minimizes — time-to-accuracy, dollar cost, or a
//! deadline-penalized cost — plus the bookkeeping the experiment harness
//! needs (search cost, throughput, failure reasons).

use mlconf_sim::outcome::SimResult;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// Fixed per-trial provisioning time (cluster spin-up, data staging) in
/// seconds, charged to search cost.
pub const PROVISIONING_SECS: f64 = 120.0;

/// What the tuner minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Wall-clock seconds to reach the workload's target quality.
    TimeToAccuracy,
    /// Dollar cost to reach the target quality.
    CostToAccuracy,
    /// Dollar cost, with configurations missing the deadline penalized
    /// proportionally to how badly they miss it.
    DeadlineCost {
        /// Deadline on time-to-accuracy in seconds.
        deadline_secs: f64,
        /// Penalty multiplier per unit of relative overshoot.
        penalty: f64,
    },
}

impl Objective {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::TimeToAccuracy => "time-to-accuracy",
            Objective::CostToAccuracy => "cost-to-accuracy",
            Objective::DeadlineCost { .. } => "deadline-cost",
        }
    }
}

/// Result of evaluating one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// The objective value (lower is better); `None` when the
    /// configuration failed to run (OOM or unmappable).
    pub objective: Option<f64>,
    /// Why the trial failed, when it did.
    pub failure: Option<String>,
    /// Predicted wall-clock seconds to the target quality.
    pub tta_secs: f64,
    /// Predicted dollars to the target quality.
    pub cost_usd: f64,
    /// Measured steady-state throughput in samples/second.
    pub throughput: f64,
    /// Measured mean gradient staleness in steps.
    pub staleness_steps: f64,
    /// Machine-seconds spent *running this trial* during the search
    /// (provisioning + profiling run, times nodes) — the currency of E4.
    pub search_cost_machine_secs: f64,
    /// When the trial timed out, the objective-space lower bound implied
    /// by the cutoff (the run was killed at the cutoff, so its true
    /// objective is at least this). `None` for uncensored trials.
    pub censored_at: Option<f64>,
    /// How many execution attempts this outcome consumed (1 = succeeded
    /// or failed on the first try; retries of crashed attempts add one
    /// each).
    pub attempts: u32,
}

impl TrialOutcome {
    /// A failed trial (infeasible or unmappable configuration).
    pub fn failed(reason: impl Into<String>, search_cost_machine_secs: f64) -> Self {
        TrialOutcome {
            objective: None,
            failure: Some(reason.into()),
            tta_secs: f64::INFINITY,
            cost_usd: f64::INFINITY,
            throughput: 0.0,
            staleness_steps: 0.0,
            search_cost_machine_secs,
            censored_at: None,
            attempts: 1,
        }
    }

    /// Whether the trial produced a usable measurement.
    pub fn is_ok(&self) -> bool {
        self.objective.is_some()
    }

    /// Whether the trial's measurement is right-censored (it was killed
    /// at a timeout cutoff; the true objective is ≥ [`Self::censored_at`]).
    pub fn is_censored(&self) -> bool {
        self.censored_at.is_some()
    }
}

/// Scores a simulation result against an objective, sampling the
/// workload's (noisy) convergence behaviour with `rng`.
///
/// Returns a failed outcome when the simulated configuration was
/// infeasible.
pub fn score<R: Rng + ?Sized>(
    objective: Objective,
    workload: &Workload,
    sim: &SimResult,
    rng: &mut R,
) -> TrialOutcome {
    // Search cost is charged whether or not the trial succeeded: a failed
    // provisioning attempt still burns machine time.
    let nodes_secs = |run_secs: f64| run_secs + PROVISIONING_SECS;
    if !sim.is_feasible() {
        let reason = sim
            .infeasibility()
            .map(|i| i.to_string())
            .unwrap_or_else(|| "infeasible".to_owned());
        // Failed runs are detected at provisioning/first-step time.
        let cost = nodes_secs(0.0) * price_nodes(sim);
        return TrialOutcome::failed(reason, cost);
    }

    let epochs = workload.convergence().sample_epochs(
        sim.global_batch(),
        sim.avg_staleness_steps(),
        workload.job().dataset_samples(),
        rng,
    );
    let samples = epochs * workload.job().dataset_samples() as f64;
    let tta_secs = samples / sim.throughput();
    let cost_usd = tta_secs / 3600.0 * sim.cluster_price_per_hour();
    let value = match objective {
        Objective::TimeToAccuracy => tta_secs,
        Objective::CostToAccuracy => cost_usd,
        Objective::DeadlineCost {
            deadline_secs,
            penalty,
        } => {
            if tta_secs <= deadline_secs {
                cost_usd
            } else {
                cost_usd * (1.0 + penalty * (tta_secs / deadline_secs - 1.0))
            }
        }
    };
    TrialOutcome {
        objective: Some(value),
        failure: None,
        tta_secs,
        cost_usd,
        throughput: sim.throughput(),
        staleness_steps: sim.avg_staleness_steps(),
        search_cost_machine_secs: nodes_secs(sim.duration_secs()) * price_nodes(sim),
        censored_at: None,
        attempts: 1,
    }
}

/// Number of nodes inferred from the cluster price (the `SimResult` does
/// not carry the cluster itself); search cost uses machine-seconds, i.e.
/// run time × nodes, and we recover nodes from price ratios at reporting
/// time. To keep the unit honest we charge *price-weighted* seconds: one
/// machine-second of an expensive box costs proportionally more.
fn price_nodes(sim: &SimResult) -> f64 {
    // Normalize to the cheapest catalog machine so the unit reads as
    // "equivalent small-machine seconds".
    const BASE_PRICE_PER_HOUR: f64 = 0.10;
    sim.cluster_price_per_hour() / BASE_PRICE_PER_HOUR
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::mlp_mnist;
    use mlconf_sim::memory::Infeasibility;
    use mlconf_sim::outcome::PhaseBreakdown;
    use mlconf_util::rng::Pcg64;
    use mlconf_util::stats::OnlineStats;

    fn sim_result(throughput_steps: u64, batch: u64, secs: f64, staleness: f64) -> SimResult {
        let st: OnlineStats = [secs / throughput_steps as f64].into_iter().collect();
        SimResult::feasible(
            throughput_steps,
            batch,
            secs,
            st,
            PhaseBreakdown::default(),
            staleness,
            4.0,
        )
    }

    #[test]
    fn tta_objective_matches_composition() {
        let w = mlp_mnist();
        let sim = sim_result(100, 512, 20.0, 0.0); // 2560 samples/s
        let mut rng = Pcg64::seed(1);
        let out = score(Objective::TimeToAccuracy, &w, &sim, &mut rng);
        assert!(out.is_ok());
        let epochs = w
            .convergence()
            .epochs_to_target(512, 0.0, w.job().dataset_samples());
        // Noise CV is 5%; the sampled value should be within a few sigma.
        let want = epochs * w.job().dataset_samples() as f64 / sim.throughput();
        let got = out.objective.unwrap();
        assert!((got / want - 1.0).abs() < 0.25, "got {got} want ~{want}");
        assert_eq!(got, out.tta_secs);
    }

    #[test]
    fn cost_objective_scales_with_price() {
        let w = mlp_mnist();
        let sim = sim_result(100, 512, 20.0, 0.0);
        let mut rng = Pcg64::seed(2);
        let out = score(Objective::CostToAccuracy, &w, &sim, &mut rng);
        assert!((out.cost_usd - out.tta_secs / 3600.0 * 4.0).abs() < 1e-9);
        assert_eq!(out.objective.unwrap(), out.cost_usd);
    }

    #[test]
    fn deadline_penalty_applies_only_past_deadline() {
        let w = mlp_mnist();
        let sim = sim_result(100, 512, 20.0, 0.0);
        let mut r1 = Pcg64::seed(3);
        let mut r2 = Pcg64::seed(3);
        let loose = score(
            Objective::DeadlineCost {
                deadline_secs: 1e9,
                penalty: 10.0,
            },
            &w,
            &sim,
            &mut r1,
        );
        let tight = score(
            Objective::DeadlineCost {
                deadline_secs: 1.0,
                penalty: 10.0,
            },
            &w,
            &sim,
            &mut r2,
        );
        assert_eq!(loose.objective.unwrap(), loose.cost_usd);
        assert!(tight.objective.unwrap() > tight.cost_usd);
    }

    #[test]
    fn staleness_worsens_objective() {
        let w = mlp_mnist();
        let fresh = sim_result(100, 512, 20.0, 0.0);
        let stale = sim_result(100, 512, 20.0, 4.0);
        let mut r1 = Pcg64::seed(4);
        let mut r2 = Pcg64::seed(4);
        let a = score(Objective::TimeToAccuracy, &w, &fresh, &mut r1);
        let b = score(Objective::TimeToAccuracy, &w, &stale, &mut r2);
        assert!(b.objective.unwrap() > a.objective.unwrap());
    }

    #[test]
    fn infeasible_sim_fails_with_reason_and_cost() {
        let w = mlp_mnist();
        let sim = SimResult::infeasible(
            Infeasibility::WorkerOom {
                required: 10,
                available: 5,
            },
            4.0,
        );
        let mut rng = Pcg64::seed(5);
        let out = score(Objective::TimeToAccuracy, &w, &sim, &mut rng);
        assert!(!out.is_ok());
        assert!(out.failure.as_deref().unwrap().contains("OOM"));
        assert!(out.search_cost_machine_secs > 0.0);
        assert_eq!(out.tta_secs, f64::INFINITY);
    }

    #[test]
    fn search_cost_includes_provisioning() {
        let w = mlp_mnist();
        let sim = sim_result(100, 512, 20.0, 0.0);
        let mut rng = Pcg64::seed(6);
        let out = score(Objective::TimeToAccuracy, &w, &sim, &mut rng);
        // (20 run + 120 provisioning) × price-normalized nodes (4.0/0.1).
        assert!((out.search_cost_machine_secs - 140.0 * 40.0).abs() < 1e-9);
    }

    #[test]
    fn objective_names() {
        assert_eq!(Objective::TimeToAccuracy.name(), "time-to-accuracy");
        assert_eq!(
            Objective::DeadlineCost {
                deadline_secs: 1.0,
                penalty: 1.0
            }
            .name(),
            "deadline-cost"
        );
    }
}
