//! Overload and drain behavior: a saturated server must *answer* —
//! 429/503 with `Retry-After` — never hang clients or queue unbounded
//! work, and shutdown must drain gracefully.

use mlconf_serve::{ServeConfig, Server};
use std::io::Read;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlconf_overload_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Reads whatever the server sends until EOF (bounded by the socket
/// read timeout). An empty string means the server closed without a
/// response (a timed-out idle connection) — which is fine; a *hang* is
/// not, and the read timeout turns a hang into a test failure.
fn read_all(mut stream: TcpStream) -> String {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = String::new();
    let _ = stream.read_to_string(&mut buf);
    buf
}

#[test]
fn saturated_queue_sheds_with_429_and_retry_after() {
    let dir = tmpdir("shed");
    let mut config = ServeConfig::new(dir.clone());
    config.shards = 1;
    config.queue_depth = 1; // the one IO shard holds 2 connections
                            // Idle connections free their slots quickly.
    config.read_timeout = Duration::from_millis(300);
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // Open a burst of connections that never send a request: the first
    // two fill the shard's slots, the rest must be shed — immediately,
    // with an answer.
    let conns: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut shed = 0;
    for conn in conns {
        let response = read_all(conn);
        if response.contains("429 Too Many Requests") {
            assert!(
                response.contains("retry-after:"),
                "shed response must carry Retry-After: {response:?}"
            );
            assert!(response.contains("\"error\""));
            shed += 1;
        }
    }
    assert!(
        shed >= 1,
        "an 8-connection burst against a 1-shard, 2-slot server must shed"
    );

    // The server recovers once the burst clears: health returns 200.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok((status, _)) =
            mlconf_serve::client::request(&addr.to_string(), "GET", "/healthz", None)
        {
            if status == 200 {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server did not recover from the burst"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_mode_answers_new_connections_with_503() {
    let dir = tmpdir("drain");
    let mut config = ServeConfig::new(dir.clone());
    config.shards = 1;
    config.read_timeout = Duration::from_secs(1);
    config.drain_grace = Duration::from_secs(5);
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();

    // Pin the shard with an idle connection so drain has something to
    // wait for, then request shutdown.
    let pinned = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    // A connection arriving during the drain window is answered — 503,
    // Retry-After — not ignored and not hung.
    std::thread::sleep(Duration::from_millis(100));
    let late = TcpStream::connect(addr).unwrap();
    let response = read_all(late);
    assert!(
        response.contains("503 Service Unavailable"),
        "drain must answer with 503: {response:?}"
    );
    assert!(response.contains("retry-after:"), "{response:?}");

    drop(pinned);
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
