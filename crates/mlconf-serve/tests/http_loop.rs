//! End-to-end service tests over real sockets: a client drives full
//! tuning runs through raw HTTP and the results must be bit-identical
//! to the in-process [`TuningSession`] at the same seed — including
//! across a mid-run kill + restart recovered from the journal.

use mlconf_serve::api::{config_from_json, outcome_to_json};
use mlconf_serve::client::request;
use mlconf_serve::http::ReadLimits;
use mlconf_serve::json::{obj, parse, Json};
use mlconf_serve::{ServeConfig, Server};
use mlconf_tuners::bo::BoTuner;
use mlconf_tuners::session::TuningSession;
use mlconf_tuners::tuner::TrialHistory;
use mlconf_workloads::evaluator::ConfigEvaluator;
use mlconf_workloads::objective::Objective;
use mlconf_workloads::workload::mlp_mnist;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlconf_http_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start(dir: &Path) -> (Server, String) {
    let server = Server::bind("127.0.0.1:0", ServeConfig::new(dir.to_path_buf())).expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn evaluator(seed: u64) -> ConfigEvaluator {
    ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 8, seed)
}

/// POSTs `/sessions` and returns the new session id.
fn create_session(addr: &str, tuner: &str, budget: usize, seed: u64) -> String {
    let body = format!(r#"{{"tuner":"{tuner}","budget":{budget},"seed":{seed},"max_nodes":8}}"#);
    let (status, response) = request(addr, "POST", "/sessions", Some(&body)).expect("create");
    assert_eq!(status, 201, "{response}");
    parse(&response)
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .expect("id in response")
        .to_owned()
}

/// One suggest → evaluate → report step. Returns `None` when the
/// session reports itself done, otherwise the raw suggestion body.
fn step(addr: &str, id: &str, ev: &ConfigEvaluator, history: &mut TrialHistory) -> Option<String> {
    let (status, body) =
        request(addr, "POST", &format!("/sessions/{id}/suggest"), None).expect("suggest");
    assert_eq!(status, 200, "{body}");
    let suggestion = parse(&body).unwrap();
    if suggestion.get("done").and_then(Json::as_bool) == Some(true) {
        return None;
    }
    // The client executes the trial exactly as the simulator path would:
    // same evaluator, same (config, rep, fidelity) triple.
    let cfg = config_from_json(ev.space(), suggestion.get("config").unwrap()).unwrap();
    let rep = suggestion.get("rep").unwrap().as_i64().unwrap() as u64;
    let fidelity = suggestion.get("fidelity").unwrap().as_f64().unwrap();
    let outcome = ev.evaluate_with_fidelity(&cfg, rep, fidelity);
    let report = obj([("outcome", outcome_to_json(&outcome))]).render();
    let (status, response) = request(
        addr,
        "POST",
        &format!("/sessions/{id}/report"),
        Some(&report),
    )
    .expect("report");
    assert_eq!(status, 200, "{response}");
    history.push(cfg, outcome);
    Some(body)
}

/// Decodes the history array of a `GET /sessions/{id}` status body.
fn history_from_status(ev: &ConfigEvaluator, status: &Json) -> TrialHistory {
    let mut history = TrialHistory::new();
    for t in status.get("history").unwrap().as_arr().unwrap() {
        let cfg = config_from_json(ev.space(), t.get("config").unwrap()).unwrap();
        let outcome = mlconf_serve::api::outcome_from_json(t.get("outcome").unwrap()).unwrap();
        history.push(cfg, outcome);
    }
    history
}

#[test]
fn http_loop_is_bit_identical_to_in_process_run_at_golden_seeds() {
    for seed in [11u64, 22, 33] {
        let ev = evaluator(seed);
        let budget = 10;

        // Reference: the in-process pipeline.
        let mut tuner = BoTuner::with_defaults(ev.space().clone(), seed);
        let reference = TuningSession::new(&ev, budget, seed).run(&mut tuner);

        // Same tuning run, but through the service over real sockets.
        let dir = tmpdir(&format!("golden_{seed}"));
        let (server, addr) = start(&dir);
        let id = create_session(&addr, "bo", budget, seed);
        let mut client_history = TrialHistory::new();
        while step(&addr, &id, &ev, &mut client_history).is_some() {}

        assert_eq!(
            reference.history, client_history,
            "seed {seed}: HTTP loop diverged from in-process run"
        );

        // The server's own view agrees too: history, incumbent, state.
        let (status, body) =
            request(&addr, "GET", &format!("/sessions/{id}"), None).expect("status");
        assert_eq!(status, 200);
        let status_json = parse(&body).unwrap();
        assert_eq!(
            history_from_status(&ev, &status_json),
            reference.history,
            "seed {seed}"
        );
        assert_eq!(
            status_json.get("finished").and_then(Json::as_bool),
            Some(true)
        );
        let best = status_json.get("best").unwrap();
        assert_eq!(
            best.get("objective").and_then(Json::as_f64),
            reference.history.best().unwrap().outcome.objective,
            "seed {seed}: incumbent objective"
        );

        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A portfolio session created over HTTP with the `arms` field must be
/// bit-identical to the in-process portfolio session at the golden
/// seeds — the composite tuner's arm scheduling is entirely inside the
/// tuner, so the wire protocol needs no changes and gains no drift.
#[test]
fn portfolio_http_loop_is_bit_identical_to_in_process_run_at_golden_seeds() {
    for seed in [11u64, 22, 33] {
        let ev = evaluator(seed);
        let budget = 10;

        let mut tuner = mlconf_tuners::factory::build_tuner(
            "portfolio:bo,lhs",
            ev.space().clone(),
            budget,
            seed,
            None,
        )
        .expect("portfolio builds");
        let reference = TuningSession::new(&ev, budget, seed).run(tuner.as_mut());

        let dir = tmpdir(&format!("pf_golden_{seed}"));
        let (server, addr) = start(&dir);
        // The arm list travels as a JSON array; the server canonicalises
        // it into the factory's `portfolio:bo,lhs` name.
        let body = format!(
            r#"{{"tuner":"portfolio","arms":["bo","lhs"],"budget":{budget},"seed":{seed},"max_nodes":8}}"#
        );
        let (status, response) = request(&addr, "POST", "/sessions", Some(&body)).expect("create");
        assert_eq!(status, 201, "{response}");
        let id = parse(&response)
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();

        let mut client_history = TrialHistory::new();
        while step(&addr, &id, &ev, &mut client_history).is_some() {}
        assert_eq!(
            reference.history, client_history,
            "seed {seed}: HTTP portfolio loop diverged from in-process run"
        );

        // The status view reports the canonicalised factory spec.
        let (status, body) =
            request(&addr, "GET", &format!("/sessions/{id}"), None).expect("status");
        assert_eq!(status, 200);
        let status_json = parse(&body).unwrap();
        assert_eq!(
            status_json
                .get("spec")
                .and_then(|s| s.get("tuner"))
                .and_then(Json::as_str),
            Some("portfolio:bo,lhs"),
            "seed {seed}: canonical spec in status"
        );
        assert_eq!(
            history_from_status(&ev, &status_json),
            reference.history,
            "seed {seed}: server-side history"
        );

        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn kill_and_restart_resumes_with_the_same_next_suggestion() {
    let seed = 22u64;
    let budget = 9;
    let ev = evaluator(seed);
    let mut tuner = BoTuner::with_defaults(ev.space().clone(), seed);
    let reference = TuningSession::new(&ev, budget, seed).run(&mut tuner);

    let dir = tmpdir("restart");
    let (server, addr) = start(&dir);
    let id = create_session(&addr, "bo", budget, seed);
    let mut client_history = TrialHistory::new();
    for _ in 0..4 {
        step(&addr, &id, &ev, &mut client_history).expect("mid-run trial");
    }
    // Take (but do not report) the next suggestion, then kill the
    // server: the suggestion survives only in the journal.
    let (status, pending_before) =
        request(&addr, "POST", &format!("/sessions/{id}/suggest"), None).unwrap();
    assert_eq!(status, 200);
    drop(server);

    // Restart over the same journal directory (fresh port): replay must
    // reproduce the pending suggestion bit-for-bit.
    let (server2, addr2) = start(&dir);
    let (status, pending_after) =
        request(&addr2, "POST", &format!("/sessions/{id}/suggest"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        pending_before, pending_after,
        "journal replay changed the next suggestion"
    );

    // Finish the run against the restarted server; the complete history
    // still matches the uninterrupted in-process run.
    while step(&addr2, &id, &ev, &mut client_history).is_some() {}
    assert_eq!(reference.history, client_history);

    drop(server2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_requests_get_4xx_and_the_server_stays_up() {
    let dir = tmpdir("malformed");
    let mut config = ServeConfig::new(dir.clone());
    config.limits = ReadLimits {
        max_head_bytes: 4096,
        max_body_bytes: 512,
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();

    // Bad JSON body.
    let (status, body) = request(&addr, "POST", "/sessions", Some("{oops")).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(parse(&body).unwrap().get("error").is_some());

    // Unknown session id, on every session route.
    for (method, path) in [
        ("POST", "/sessions/s404/suggest"),
        ("POST", "/sessions/s404/report"),
        ("GET", "/sessions/s404"),
        ("DELETE", "/sessions/s404"),
    ] {
        let payload = (method == "POST").then_some("{}");
        let (status, body) = request(&addr, method, path, payload).unwrap();
        assert_eq!(status, 404, "{method} {path}: {body}");
    }

    // Valid session, but a report with no outstanding suggestion.
    let id = create_session(&addr, "random", 3, 1);
    let outcome = mlconf_workloads::objective::TrialOutcome::failed("n/a", 1.0);
    let report = obj([("outcome", outcome_to_json(&outcome))]).render();
    let (status, _) = request(
        &addr,
        "POST",
        &format!("/sessions/{id}/report"),
        Some(&report),
    )
    .unwrap();
    assert_eq!(status, 409);

    // Oversized body → 413.
    let huge = format!(r#"{{"pad":"{}"}}"#, "x".repeat(600));
    let (status, _) = request(&addr, "POST", "/sessions", Some(&huge)).unwrap();
    assert_eq!(status, 413);

    // After all that abuse the server still answers cleanly.
    let (status, body) = request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");
    let (status, _) = request(&addr, "POST", &format!("/sessions/{id}/suggest"), None).unwrap();
    assert_eq!(status, 200);

    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}
