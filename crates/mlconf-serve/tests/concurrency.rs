//! Property test: many client threads hammering distinct sessions on
//! one server never deadlock, never cross-contaminate each other's
//! state, and the journals replay every session back bit-identically.

use mlconf_serve::api::{config_from_json, outcome_to_json};
use mlconf_serve::client::request;
use mlconf_serve::json::{obj, parse, Json};
use mlconf_serve::{ServeConfig, Server};
use mlconf_tuners::factory::build_tuner;
use mlconf_tuners::session::{Ask, AskTellSession};
use mlconf_tuners::tuner::TrialHistory;
use mlconf_workloads::evaluator::ConfigEvaluator;
use mlconf_workloads::objective::Objective;
use mlconf_workloads::tunespace::{default_config, standard_space};
use mlconf_workloads::workload::mlp_mnist;
use proptest::prelude::*;

const MAX_NODES: i64 = 8;
const BUDGET: usize = 4;
const TUNERS: [&str; 3] = ["random", "lhs", "anneal"];

fn evaluator(seed: u64) -> ConfigEvaluator {
    ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, MAX_NODES, seed)
}

/// The in-process ground truth for one served session: the same tuner
/// the registry builds, stepped through the same ask/tell core.
fn reference_history(tuner_name: &str, seed: u64) -> TrialHistory {
    let ev = evaluator(seed);
    let mut tuner = build_tuner(
        tuner_name,
        standard_space(MAX_NODES),
        BUDGET,
        seed,
        Some(default_config(MAX_NODES)),
    )
    .expect("known tuner");
    let mut core = AskTellSession::new(BUDGET, seed);
    loop {
        match core.ask(tuner.as_mut()).expect("protocol") {
            Ask::Finished { .. } => break,
            Ask::Trial(p) => {
                let outcome = ev.evaluate_with_fidelity(&p.config, p.rep, p.fidelity);
                core.tell_outcome(tuner.as_mut(), outcome)
                    .expect("protocol");
            }
        }
    }
    core.history().clone()
}

/// Drives one session to completion over HTTP, returning the history
/// the client observed.
fn drive_session(addr: &str, id: &str, seed: u64) -> TrialHistory {
    let ev = evaluator(seed);
    let mut history = TrialHistory::new();
    loop {
        let (status, body) =
            request(addr, "POST", &format!("/sessions/{id}/suggest"), None).expect("suggest");
        assert_eq!(status, 200, "{id}: {body}");
        let suggestion = parse(&body).unwrap();
        if suggestion.get("done").and_then(Json::as_bool) == Some(true) {
            return history;
        }
        let cfg = config_from_json(ev.space(), suggestion.get("config").unwrap()).unwrap();
        let rep = suggestion.get("rep").unwrap().as_i64().unwrap() as u64;
        let fidelity = suggestion.get("fidelity").unwrap().as_f64().unwrap();
        let outcome = ev.evaluate_with_fidelity(&cfg, rep, fidelity);
        let report = obj([("outcome", outcome_to_json(&outcome))]).render();
        let (status, body) = request(
            addr,
            "POST",
            &format!("/sessions/{id}/report"),
            Some(&report),
        )
        .expect("report");
        assert_eq!(status, 200, "{id}: {body}");
        history.push(cfg, outcome);
    }
}

fn status_body(addr: &str, id: &str) -> String {
    let (status, body) = request(addr, "GET", &format!("/sessions/{id}"), None).expect("status");
    assert_eq!(status, 200, "{id}: {body}");
    body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn concurrent_sessions_stay_isolated_and_replay_identically(
        specs in proptest::collection::vec((0usize..TUNERS.len(), 0u64..1000), 2..=4),
        workers in 2usize..=4,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "mlconf_conc_{}_{}",
            std::process::id(),
            specs.iter().map(|(t, s)| t * 1000 + *s as usize).sum::<usize>()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut config = ServeConfig::new(dir.clone());
        config.shards = workers;
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr().to_string();

        // Create one session per spec, serially (ids are s1, s2, ...).
        let mut ids = Vec::new();
        for (tuner_idx, seed) in &specs {
            let body = format!(
                r#"{{"tuner":"{}","budget":{BUDGET},"seed":{seed},"max_nodes":{MAX_NODES}}}"#,
                TUNERS[*tuner_idx]
            );
            let (status, response) = request(&addr, "POST", "/sessions", Some(&body)).unwrap();
            prop_assert_eq!(status, 201, "{}", response);
            let id = parse(&response).unwrap().get("id").and_then(Json::as_str).unwrap().to_owned();
            ids.push(id);
        }

        // Drive every session concurrently, one client thread each.
        let handles: Vec<_> = ids
            .iter()
            .zip(&specs)
            .map(|(id, (_, seed))| {
                let (addr, id, seed) = (addr.clone(), id.clone(), *seed);
                std::thread::spawn(move || drive_session(&addr, &id, seed))
            })
            .collect();
        let histories: Vec<TrialHistory> =
            handles.into_iter().map(|h| h.join().expect("no deadlock/panic")).collect();

        // No cross-contamination: every session matches its own
        // single-threaded in-process reference exactly.
        for ((history, (tuner_idx, seed)), id) in histories.iter().zip(&specs).zip(&ids) {
            let expected = reference_history(TUNERS[*tuner_idx], *seed);
            prop_assert_eq!(history, &expected, "session {} diverged", id);
        }

        // Journal replay: restart the service over the same directory
        // and require every session's rendered status to be unchanged.
        let before: Vec<String> = ids.iter().map(|id| status_body(&addr, id)).collect();
        drop(server);
        let server2 = Server::bind("127.0.0.1:0", ServeConfig::new(dir.clone())).expect("rebind");
        let addr2 = server2.local_addr().to_string();
        for (id, expected) in ids.iter().zip(&before) {
            let after = status_body(&addr2, id);
            prop_assert_eq!(&after, expected, "session {} changed across restart", id);
        }

        drop(server2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
