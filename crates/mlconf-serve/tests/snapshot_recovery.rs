//! Golden guarantees for journal snapshots + compaction: recovery
//! through a checkpoint is **bit-identical** to full-journal replay —
//! same history, same RNG position, same next suggestion — at seeds
//! {11, 22, 33}, under fault injection and censoring, across repeated
//! crash-restarts. And the point of the feature: restart replays at
//! most `snapshot_every` journal records, not the whole run.

use mlconf_serve::api::{config_from_json, executed_to_json};
use mlconf_serve::json::Json;
use mlconf_serve::{RegistryConfig, SessionRegistry};
use mlconf_sim::faultplan::FaultPlan;
use mlconf_sim::scenario::ScenarioScript;
use mlconf_tuners::executor::TrialExecutor;
use mlconf_workloads::evaluator::ConfigEvaluator;
use mlconf_workloads::objective::Objective;
use mlconf_workloads::workload::mlp_mnist;
use std::path::{Path, PathBuf};

const GOLDEN_SEEDS: [u64; 3] = [11, 22, 33];
const BUDGET: usize = 12;
const SNAPSHOT_EVERY: u64 = 3;

fn tmpdir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mlconf_snapgolden_{tag}_{seed}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A fault-injecting trial runner shared by both sides of a comparison:
/// identical (seed, trial, config) always produce identical
/// `ExecutedTrial`s, including crashes, OOMs, and censored timeouts.
fn harness(seed: u64) -> (ConfigEvaluator, TrialExecutor) {
    let ev = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 8, seed);
    let ex = TrialExecutor::standard(seed).with_plan(FaultPlan::scripted(BUDGET, 2.0, seed));
    (ev, ex)
}

/// Runs one suggest→execute→report cycle through the registry surface.
/// Returns `false` once the session declares itself finished. Reports
/// carry a dedup key so the `last_report` cache rides through
/// checkpoints too.
fn step(registry: &SessionRegistry, id: &str, ev: &ConfigEvaluator, ex: &TrialExecutor) -> bool {
    let handle = registry.get(id).expect("session exists");
    let mut session = handle.lock().unwrap();
    let suggestion = session.suggest().unwrap();
    if suggestion.get("done").and_then(Json::as_bool) == Some(true) {
        return false;
    }
    let cfg = config_from_json(&session.spec().space(), suggestion.get("config").unwrap()).unwrap();
    let trial = suggestion.get("trial").unwrap().as_i64().unwrap() as usize;
    let rep = suggestion.get("rep").unwrap().as_i64().unwrap() as u64;
    let fidelity = suggestion.get("fidelity").unwrap().as_f64().unwrap();
    let incumbent = session.core().incumbent_tta();
    let executed = ex.execute(ev, &cfg, rep, fidelity, trial, incumbent);
    let Json::Obj(mut body) = executed_to_json(&executed) else {
        unreachable!("executed_to_json returns an object")
    };
    body.push(("key".to_owned(), Json::Str(format!("t{trial}"))));
    session.report(&Json::Obj(body)).unwrap();
    true
}

fn create(registry: &SessionRegistry, tuner: &str, seed: u64) -> String {
    let body = mlconf_serve::json::parse(&format!(
        r#"{{"tuner":"{tuner}","budget":{BUDGET},"seed":{seed},"max_nodes":8}}"#
    ))
    .unwrap();
    let created = registry.create(&body).unwrap();
    created.get("id").unwrap().as_str().unwrap().to_owned()
}

fn final_state(registry: &SessionRegistry, id: &str) -> String {
    let handle = registry.get(id).unwrap();
    let session = handle.lock().unwrap();
    session.status_json().render()
}

/// Opens the registry with a single shard so on-disk paths stay
/// predictable (`<dir>/shard-0/…`) even after the registry is dropped.
fn open_one_shard(dir: &Path, snapshot_every: u64) -> SessionRegistry {
    let config = RegistryConfig {
        snapshot_every,
        shards: 1,
        max_sessions: 0,
    };
    SessionRegistry::open(dir, config).unwrap()
}

fn session_file(dir: &Path, id: &str, ext: &str) -> PathBuf {
    dir.join("shard-0").join(format!("{id}.{ext}"))
}

fn active_journal_records(dir: &Path, id: &str) -> usize {
    let raw = std::fs::read_to_string(session_file(dir, id, "jsonl")).unwrap();
    raw.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Drives a full session with crash-restarts every `restart_every`
/// steps, returning the final rendered status. `snapshot_every` = 0
/// means pure full-journal replay (the PR 4 behavior).
fn run_with_restarts(
    dir: &Path,
    tuner: &str,
    seed: u64,
    snapshot_every: u64,
    restart_every: usize,
) -> String {
    let (ev, ex) = harness(seed);
    let mut registry = open_one_shard(dir, snapshot_every);
    let id = create(&registry, tuner, seed);
    let mut steps = 0usize;
    loop {
        if !step(&registry, &id, &ev, &ex) {
            break;
        }
        steps += 1;
        if snapshot_every > 0 {
            // The compaction invariant: the active journal never holds
            // more than snapshot_every records (+ its base marker).
            assert!(
                active_journal_records(dir, &id) as u64 <= snapshot_every + 1,
                "active journal grew past the snapshot interval"
            );
        }
        if steps.is_multiple_of(restart_every) {
            // Crash: drop everything, recover from disk.
            drop(registry);
            registry = open_one_shard(dir, snapshot_every);
        }
    }
    let state = final_state(&registry, &id);
    drop(registry);
    state
}

/// The drift-session analogue of `run_with_restarts`: the spec pins a
/// scenario script and a re-tune policy, and the reporting client
/// evaluates each trial with the same scenario attached at the
/// `epoch_secs` the suggestion carries — the serve-side mirror of what
/// an in-process `drive()` would do.
fn run_drift_with_restarts(
    dir: &Path,
    seed: u64,
    snapshot_every: u64,
    restart_every: usize,
) -> String {
    const SCENARIO: &str = "congestion:7";
    let ev = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 8, seed)
        .with_scenario(ScenarioScript::parse_spec(SCENARIO).unwrap());
    let ex = TrialExecutor::standard(seed).with_plan(FaultPlan::scripted(BUDGET, 2.0, seed));
    let mut registry = open_one_shard(dir, snapshot_every);
    let body = mlconf_serve::json::parse(&format!(
        r#"{{"tuner":"bo","budget":{BUDGET},"seed":{seed},"max_nodes":8,"scenario":"{SCENARIO}","retune_policy":"always:4"}}"#
    ))
    .unwrap();
    let id = registry
        .create(&body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    let mut steps = 0usize;
    loop {
        let done = {
            let handle = registry.get(&id).expect("session exists");
            let mut session = handle.lock().unwrap();
            let suggestion = session.suggest().unwrap();
            if suggestion.get("done").and_then(Json::as_bool) == Some(true) {
                true
            } else {
                let cfg =
                    config_from_json(&session.spec().space(), suggestion.get("config").unwrap())
                        .unwrap();
                let trial = suggestion.get("trial").unwrap().as_i64().unwrap() as usize;
                let rep = suggestion.get("rep").unwrap().as_i64().unwrap() as u64;
                let fidelity = suggestion.get("fidelity").unwrap().as_f64().unwrap();
                let epoch = suggestion.get("epoch_secs").unwrap().as_f64().unwrap();
                let incumbent = session.core().incumbent_tta();
                let executed =
                    ex.execute_at(&ev, &cfg, rep, fidelity, trial, incumbent, Some(epoch));
                let Json::Obj(mut body) = executed_to_json(&executed) else {
                    unreachable!("executed_to_json returns an object")
                };
                body.push(("key".to_owned(), Json::Str(format!("t{trial}"))));
                session.report(&Json::Obj(body)).unwrap();
                false
            }
        };
        if done {
            break;
        }
        steps += 1;
        if restart_every > 0 && steps.is_multiple_of(restart_every) {
            drop(registry);
            registry = open_one_shard(dir, snapshot_every);
        }
    }
    let state = final_state(&registry, &id);
    drop(registry);
    state
}

/// A session with a scenario and an `always:4` re-tune policy survives
/// crash-restarts bit-identically: probe queues, censoring horizons,
/// and the Page–Hinkley monitor state all ride through `.snap` files
/// and journal replay.
#[test]
fn drift_session_recovery_is_bit_identical_at_golden_seeds() {
    for seed in GOLDEN_SEEDS {
        let snap_dir = tmpdir("drift_restart", seed);
        let straight_dir = tmpdir("drift_straight", seed);
        let restarted = run_drift_with_restarts(&snap_dir, seed, SNAPSHOT_EVERY, 2);
        let straight = run_drift_with_restarts(&straight_dir, seed, 0, 0);
        assert_eq!(
            restarted, straight,
            "seed {seed}: drift session diverged across restarts"
        );
        // The policy must actually have engaged: re-tunes happened and
        // the status surfaces them.
        let parsed = mlconf_serve::json::parse(&straight).unwrap();
        let retunes = parsed.get("retune_count").unwrap().as_i64().unwrap();
        assert!(
            retunes >= 1,
            "seed {seed}: always:4 policy never re-tuned in {BUDGET} trials"
        );
        // And the checkpoint on disk holds the drift-detector state —
        // proof it was snapshotted, not rebuilt from scratch.
        let shard = snap_dir.join("shard-0");
        let snap = std::fs::read_dir(&shard)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "snap"))
            .expect("a snapshot file exists");
        let bytes = std::fs::read_to_string(snap.path()).unwrap();
        assert!(
            bytes.contains("ph_pos") && bytes.contains("stale_before"),
            "seed {seed}: snapshot lacks drift-detector state"
        );
        std::fs::remove_dir_all(&snap_dir).ok();
        std::fs::remove_dir_all(&straight_dir).ok();
    }
}

#[test]
fn snapshot_recovery_is_bit_identical_to_full_replay_at_golden_seeds() {
    // `portfolio:bo,lhs` rides along: both arms checkpoint, so the
    // composite state (bandit counters + per-arm sub-states) must
    // round-trip through `.snap` files exactly like a bare tuner's.
    // The `bo:` spec crosses the sparse-surrogate threshold mid-run
    // (init 4, threshold 6, budget 12), so its snapshots hold the
    // sparse cached-surrogate marker and recovery must rebuild the
    // subset model bit-identically.
    for tuner in [
        "bo",
        "anneal",
        "portfolio:bo,lhs",
        "bo:surrogate=auto,threshold=6,max-points=8,init=4",
    ] {
        for seed in GOLDEN_SEEDS {
            let tag = tuner.replace([':', ',', '='], "_");
            let snap_dir = tmpdir(&format!("{tag}_snap"), seed);
            let full_dir = tmpdir(&format!("{tag}_full"), seed);
            let with_snapshots = run_with_restarts(&snap_dir, tuner, seed, SNAPSHOT_EVERY, 4);
            let full_replay = run_with_restarts(&full_dir, tuner, seed, 0, 4);
            assert_eq!(
                with_snapshots, full_replay,
                "{tuner} seed {seed}: snapshot recovery diverged from full replay"
            );
            std::fs::remove_dir_all(&snap_dir).ok();
            std::fs::remove_dir_all(&full_dir).ok();
        }
    }
}

#[test]
fn snapshot_recovery_matches_uninterrupted_run() {
    for seed in GOLDEN_SEEDS {
        let snap_dir = tmpdir("bo_restart", seed);
        let straight_dir = tmpdir("bo_straight", seed);
        let restarted = run_with_restarts(&snap_dir, "bo", seed, SNAPSHOT_EVERY, 2);
        // Reference: same flow, no snapshots, no restarts at all.
        let straight = run_with_restarts(&straight_dir, "bo", seed, 0, usize::MAX);
        assert_eq!(
            restarted, straight,
            "seed {seed}: restarting every 2 steps with snapshots diverged"
        );
        std::fs::remove_dir_all(&snap_dir).ok();
        std::fs::remove_dir_all(&straight_dir).ok();
    }
}

/// A session whose BO tuner crosses the sparse-surrogate threshold
/// mid-run: snapshots taken after the crossing carry the sparse
/// cached-surrogate marker, and frequent crash-restarts through those
/// snapshots must reproduce the uninterrupted run bit-for-bit.
#[test]
fn sparse_surrogate_session_survives_restarts_bit_identically() {
    const SPARSE_TUNER: &str = "bo:surrogate=auto,threshold=6,max-points=8,init=4";
    for seed in GOLDEN_SEEDS {
        let snap_dir = tmpdir("sparse_restart", seed);
        let straight_dir = tmpdir("sparse_straight", seed);
        let restarted = run_with_restarts(&snap_dir, SPARSE_TUNER, seed, SNAPSHOT_EVERY, 2);
        let straight = run_with_restarts(&straight_dir, SPARSE_TUNER, seed, 0, usize::MAX);
        assert_eq!(
            restarted, straight,
            "seed {seed}: sparse-surrogate session diverged across restarts"
        );
        // The final snapshot on disk must actually hold the sparse
        // marker — proof the sparse path engaged and was checkpointed,
        // not silently skipped.
        let shard = snap_dir.join("shard-0");
        let snap = std::fs::read_dir(&shard)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "snap"))
            .expect("a snapshot file exists");
        let bytes = std::fs::read_to_string(snap.path()).unwrap();
        assert!(
            bytes.contains("cached_kind") && bytes.contains("sparse"),
            "seed {seed}: snapshot lacks the sparse cached-surrogate marker"
        );
        std::fs::remove_dir_all(&snap_dir).ok();
        std::fs::remove_dir_all(&straight_dir).ok();
    }
}

/// A portfolio with a non-checkpointable arm (hyperband) downgrades the
/// whole composite to `checkpoint() == None`: the registry never
/// installs a `.snap` and recovery is full journal replay — which must
/// still reproduce the pending suggestion bit-for-bit across a crash.
#[test]
fn non_checkpointable_portfolio_recovers_by_full_replay() {
    let seed = 33;
    let dir = tmpdir("pf_fallback", seed);
    let (ev, ex) = harness(seed);
    let registry = open_one_shard(&dir, SNAPSHOT_EVERY);
    let id = create(&registry, "portfolio:bo,hyperband", seed);
    for _ in 0..6 {
        assert!(step(&registry, &id, &ev, &ex));
    }
    let pending_before = {
        let handle = registry.get(&id).unwrap();
        let mut s = handle.lock().unwrap();
        s.suggest().unwrap().render()
    };
    drop(registry);

    assert!(
        !session_file(&dir, &id, "snap").exists(),
        "a non-checkpointable portfolio must never install a snapshot"
    );

    let recovered = open_one_shard(&dir, SNAPSHOT_EVERY);
    let handle = recovered.get(&id).expect("full-replay recovery succeeds");
    let pending_after = handle.lock().unwrap().suggest().unwrap().render();
    assert_eq!(
        pending_before, pending_after,
        "journal replay changed the portfolio's pending suggestion"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_falls_back_to_full_replay_bit_identically() {
    let seed = 11;
    let dir = tmpdir("corrupt_snap", seed);
    let (ev, ex) = harness(seed);
    let registry = open_one_shard(&dir, SNAPSHOT_EVERY);
    let id = create(&registry, "bo", seed);
    for _ in 0..6 {
        assert!(step(&registry, &id, &ev, &ex));
    }
    let pending_before = {
        let handle = registry.get(&id).unwrap();
        let mut s = handle.lock().unwrap();
        s.suggest().unwrap().render()
    };
    drop(registry);

    // Flip bytes in the checkpoint: the checksum rejects it and recovery
    // must stitch `.hist` + the active journal back together instead.
    let snap_path = session_file(&dir, &id, "snap");
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snap_path, &bytes).unwrap();

    let recovered = open_one_shard(&dir, SNAPSHOT_EVERY);
    let handle = recovered.get(&id).expect("fallback recovery succeeds");
    let pending_after = handle.lock().unwrap().suggest().unwrap().render();
    assert_eq!(pending_before, pending_after);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_replays_at_most_snapshot_interval_records() {
    let seed = 22;
    let dir = tmpdir("bounded", seed);
    let (ev, ex) = harness(seed);
    let registry = open_one_shard(&dir, SNAPSHOT_EVERY);
    let id = create(&registry, "bo", seed);
    for _ in 0..5 {
        assert!(step(&registry, &id, &ev, &ex));
    }
    drop(registry);
    // 5 steps = 11 ops (create + 5 suggests + 5 reports): far more than
    // the active journal may hold after compaction.
    let remaining = active_journal_records(&dir, &id);
    assert!(
        remaining as u64 <= SNAPSHOT_EVERY + 1,
        "restart would replay {remaining} records, expected at most {}",
        SNAPSHOT_EVERY + 1
    );
    // And the archive holds everything the active journal dropped, so
    // full replay stays possible.
    let registry = open_one_shard(&dir, SNAPSHOT_EVERY);
    assert!(registry.get(&id).is_some());
    std::fs::remove_dir_all(&dir).ok();
}
