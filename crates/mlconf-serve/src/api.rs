//! Wire codecs between the service's JSON protocol and the domain
//! types (`SessionSpec`, configurations, outcomes, executed trials).
//!
//! Every codec here is lossless and deterministic: floats ride Rust's
//! shortest round-trip `Display` form, and the non-finite values the
//! simulator produces for failed trials (`tta_secs = inf`) are tagged as
//! the strings `"inf"` / `"-inf"` / `"nan"`, so decode(encode(x)) is
//! bit-identical for every field. That property is what lets the journal
//! replay and the HTTP loop reproduce in-process results exactly.

use crate::json::{obj, Json};
use mlconf_sim::scenario::ScenarioScript;
use mlconf_space::config::Configuration;
use mlconf_space::param::{Param, ParamKind, ParamValue};
use mlconf_space::space::ConfigSpace;
use mlconf_tuners::drift::ReTunePolicy;
use mlconf_tuners::executor::{ExecutedTrial, ExecutionStatus};
use mlconf_tuners::session::{PendingTrial, StopCondition};
use mlconf_workloads::objective::TrialOutcome;
use mlconf_workloads::tunespace::standard_space;

/// Largest cluster size a session may be created with (the standard
/// space needs at least 3 nodes; the ceiling bounds per-session memory).
pub const MAX_NODES_LIMIT: i64 = 4096;

/// Largest trial budget a session may be created with.
pub const MAX_BUDGET: usize = 100_000;

/// Tenant name a session belongs to when the spec names none.
pub const DEFAULT_TENANT: &str = "default";

/// Longest accepted tenant name.
pub const MAX_TENANT_LEN: usize = 64;

/// A request the API layer could not decode or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError(pub String);

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ApiError {}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ApiError> {
    v.get(key)
        .ok_or_else(|| ApiError(format!("missing field `{key}`")))
}

/// Everything needed to (re)build a served session deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Tuner short name (see `mlconf_tuners::factory::TUNER_NAMES`).
    pub tuner: String,
    /// Trial budget.
    pub budget: usize,
    /// Seed for the driver RNG and the tuner.
    pub seed: u64,
    /// Cluster-size ceiling defining the standard space.
    pub max_nodes: i64,
    /// Stop conditions, in evaluation order.
    pub conditions: Vec<StopCondition>,
    /// Configurations to evaluate first, before the tuner takes over.
    pub warm_start: Vec<Configuration>,
    /// The tenant this session belongs to (admission control key).
    pub tenant: String,
    /// Scenario spec (`kind[:seed[:horizon]]`) describing the dynamic
    /// environment the reporting executor evaluates under. Validated at
    /// admission, journaled with the create record, and surfaced in
    /// status so executors replay the identical script after restarts.
    pub scenario: Option<String>,
    /// Drift-detection / re-tune policy attached to the session's state
    /// machine.
    pub retune_policy: ReTunePolicy,
}

impl SessionSpec {
    /// The configuration space this spec tunes over.
    pub fn space(&self) -> ConfigSpace {
        standard_space(self.max_nodes)
    }
}

/// Decodes a `POST /sessions` body.
///
/// An optional `"arms"` array (strings, only with `"tuner":"portfolio"`)
/// is canonicalised into the tuner name — `{"tuner":"portfolio",
/// "arms":["bo","lhs"]}` stores `portfolio:bo,lhs` — so the journal and
/// snapshot formats carry the arm set with zero extra fields.
///
/// # Errors
///
/// Returns [`ApiError`] on missing/invalid fields, an unknown tuner
/// name, a malformed portfolio arm list, or out-of-range budget /
/// max-nodes.
pub fn spec_from_json(v: &Json) -> Result<SessionSpec, ApiError> {
    let mut tuner = field(v, "tuner")?
        .as_str()
        .ok_or_else(|| ApiError("`tuner` must be a string".into()))?
        .to_owned();
    match v.get("arms") {
        None | Some(Json::Null) => {}
        Some(a) => {
            if tuner != "portfolio" {
                return Err(ApiError(format!(
                    "`arms` only applies to tuner `portfolio`, not `{tuner}`"
                )));
            }
            let arms = a
                .as_arr()
                .ok_or_else(|| ApiError("`arms` must be an array of strings".into()))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| ApiError("`arms` must be an array of strings".into()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            tuner = format!("portfolio:{}", arms.join(","));
        }
    }
    mlconf_tuners::factory::validate_tuner_name(&tuner).map_err(|e| ApiError(e.to_string()))?;
    let budget = field(v, "budget")?
        .as_i64()
        .filter(|&b| b >= 1 && b <= MAX_BUDGET as i64)
        .ok_or_else(|| ApiError(format!("`budget` must be an integer in 1..={MAX_BUDGET}")))?
        as usize;
    let seed = field(v, "seed")?
        .as_i64()
        .filter(|&s| s >= 0)
        .ok_or_else(|| ApiError("`seed` must be a non-negative integer".into()))?
        as u64;
    let max_nodes = match v.get("max_nodes") {
        None => 32,
        Some(n) => n
            .as_i64()
            .filter(|&m| (3..=MAX_NODES_LIMIT).contains(&m))
            .ok_or_else(|| {
                ApiError(format!(
                    "`max_nodes` must be an integer in 3..={MAX_NODES_LIMIT}"
                ))
            })?,
    };
    let conditions = match v.get("conditions") {
        None => Vec::new(),
        Some(c) => c
            .as_arr()
            .ok_or_else(|| ApiError("`conditions` must be an array".into()))?
            .iter()
            .map(condition_from_json)
            .collect::<Result<_, _>>()?,
    };
    let space = standard_space(max_nodes);
    let warm_start = match v.get("warm_start") {
        None => Vec::new(),
        Some(w) => w
            .as_arr()
            .ok_or_else(|| ApiError("`warm_start` must be an array".into()))?
            .iter()
            .map(|c| config_from_json(&space, c))
            .collect::<Result<_, _>>()?,
    };
    let tenant = match v.get("tenant") {
        None | Some(Json::Null) => DEFAULT_TENANT.to_owned(),
        Some(t) => {
            let t = t
                .as_str()
                .ok_or_else(|| ApiError("`tenant` must be a string".into()))?;
            if t.is_empty() || t.len() > MAX_TENANT_LEN {
                return Err(ApiError(format!(
                    "`tenant` must be 1..={MAX_TENANT_LEN} characters"
                )));
            }
            if !t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            {
                return Err(ApiError("`tenant` may only contain [A-Za-z0-9._-]".into()));
            }
            t.to_owned()
        }
    };
    let scenario = match v.get("scenario") {
        None | Some(Json::Null) => None,
        Some(s) => {
            let s = s
                .as_str()
                .ok_or_else(|| ApiError("`scenario` must be a string".into()))?;
            ScenarioScript::parse_spec(s).map_err(|e| ApiError(format!("`scenario`: {e}")))?;
            Some(s.to_owned())
        }
    };
    let retune_policy = match v.get("retune_policy") {
        None | Some(Json::Null) => ReTunePolicy::Off,
        Some(p) => {
            let p = p
                .as_str()
                .ok_or_else(|| ApiError("`retune_policy` must be a string".into()))?;
            ReTunePolicy::parse_spec(p).map_err(|e| ApiError(format!("`retune_policy`: {e}")))?
        }
    };
    Ok(SessionSpec {
        tuner,
        budget,
        seed,
        max_nodes,
        conditions,
        warm_start,
        tenant,
        scenario,
        retune_policy,
    })
}

/// Encodes a spec (journal `create` records, `GET /sessions/{id}`).
pub fn spec_to_json(spec: &SessionSpec) -> Json {
    obj([
        ("tuner", Json::Str(spec.tuner.clone())),
        ("budget", Json::Num(spec.budget as f64)),
        ("seed", Json::Num(spec.seed as f64)),
        ("max_nodes", Json::Num(spec.max_nodes as f64)),
        (
            "conditions",
            Json::Arr(spec.conditions.iter().map(condition_to_json).collect()),
        ),
        (
            "warm_start",
            Json::Arr(spec.warm_start.iter().map(config_to_json).collect()),
        ),
        ("tenant", Json::Str(spec.tenant.clone())),
        (
            "scenario",
            spec.scenario
                .as_ref()
                .map_or(Json::Null, |s| Json::Str(s.clone())),
        ),
        ("retune_policy", Json::Str(spec.retune_policy.to_spec())),
    ])
}

fn condition_from_json(v: &Json) -> Result<StopCondition, ApiError> {
    let kind = field(v, "kind")?
        .as_str()
        .ok_or_else(|| ApiError("condition `kind` must be a string".into()))?;
    let num = |key: &str| -> Result<f64, ApiError> {
        field(v, key)?
            .as_f64()
            .filter(|n| n.is_finite() && *n >= 0.0)
            .ok_or_else(|| ApiError(format!("condition `{key}` must be a non-negative number")))
    };
    let int = |key: &str| -> Result<usize, ApiError> {
        field(v, key)?
            .as_i64()
            .filter(|&n| n >= 0)
            .map(|n| n as usize)
            .ok_or_else(|| ApiError(format!("condition `{key}` must be a non-negative integer")))
    };
    match kind {
        "cost_budget" => Ok(StopCondition::CostBudget {
            machine_secs: num("machine_secs")?,
        }),
        "wall_budget" => Ok(StopCondition::WallBudget { secs: num("secs")? }),
        "acquisition_below" => Ok(StopCondition::AcquisitionBelow {
            min_trials: int("min_trials")?,
            threshold: field(v, "threshold")?
                .as_f64()
                .ok_or_else(|| ApiError("condition `threshold` must be a number".into()))?,
            patience: int("patience")?,
        }),
        other => Err(ApiError(format!("unknown condition kind `{other}`"))),
    }
}

fn condition_to_json(c: &StopCondition) -> Json {
    match *c {
        StopCondition::CostBudget { machine_secs } => obj([
            ("kind", Json::Str("cost_budget".into())),
            ("machine_secs", Json::Num(machine_secs)),
        ]),
        StopCondition::WallBudget { secs } => obj([
            ("kind", Json::Str("wall_budget".into())),
            ("secs", Json::Num(secs)),
        ]),
        StopCondition::AcquisitionBelow {
            min_trials,
            threshold,
            patience,
        } => obj([
            ("kind", Json::Str("acquisition_below".into())),
            ("min_trials", Json::Num(min_trials as f64)),
            ("threshold", tagged_num(threshold)),
            ("patience", Json::Num(patience as f64)),
        ]),
    }
}

/// Encodes a configuration as a flat `{name: value}` object in space
/// parameter order.
pub fn config_to_json(cfg: &Configuration) -> Json {
    Json::Obj(
        cfg.iter()
            .map(|(name, value)| {
                let v = match value {
                    ParamValue::Int(i) => Json::Num(*i as f64),
                    ParamValue::Float(f) => Json::Num(*f),
                    ParamValue::Str(s) => Json::Str(s.clone()),
                    ParamValue::Bool(b) => Json::Bool(*b),
                };
                (name.to_owned(), v)
            })
            .collect(),
    )
}

/// Decodes a configuration against `space`: every space parameter must
/// be present with an in-domain value, and no extra keys are allowed.
/// The result stores values in space parameter order, making the key —
/// and thus repetition counting — identical to server-built configs.
///
/// # Errors
///
/// Returns [`ApiError`] for missing, extra, mistyped, or out-of-domain
/// parameters.
pub fn config_from_json(space: &ConfigSpace, v: &Json) -> Result<Configuration, ApiError> {
    let Json::Obj(fields) = v else {
        return Err(ApiError("a configuration must be an object".into()));
    };
    if fields.len() != space.params().len() {
        return Err(ApiError(format!(
            "configuration must have exactly the space's {} parameters",
            space.params().len()
        )));
    }
    let mut pairs: Vec<(String, ParamValue)> = Vec::with_capacity(space.params().len());
    for param in space.params() {
        let value = field(v, param.name())?;
        let value = param_value_from_json(param, value)?;
        if !param.contains(&value) {
            return Err(ApiError(format!(
                "`{}` = {value} is outside the parameter's domain",
                param.name()
            )));
        }
        pairs.push((param.name().to_owned(), value));
    }
    Ok(Configuration::from_pairs(pairs))
}

fn param_value_from_json(param: &Param, v: &Json) -> Result<ParamValue, ApiError> {
    let mistyped = || {
        ApiError(format!(
            "`{}` must be a {} value",
            param.name(),
            param.kind().type_name()
        ))
    };
    Ok(match param.kind() {
        ParamKind::Int { .. } => ParamValue::Int(v.as_i64().ok_or_else(mistyped)?),
        ParamKind::Float { .. } => ParamValue::Float(v.as_f64().ok_or_else(mistyped)?),
        ParamKind::Categorical { .. } => ParamValue::Str(v.as_str().ok_or_else(mistyped)?.into()),
        ParamKind::Bool => ParamValue::Bool(v.as_bool().ok_or_else(mistyped)?),
    })
}

/// Encodes an `f64` that may be non-finite (JSON has no inf/nan).
pub fn tagged_num(x: f64) -> Json {
    if x.is_finite() {
        Json::Num(x)
    } else if x.is_nan() {
        Json::Str("nan".into())
    } else if x > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

/// Decodes a [`tagged_num`]-encoded number.
pub(crate) fn num_from_json(v: &Json, key: &str) -> Result<f64, ApiError> {
    match v {
        Json::Num(n) => Ok(*n),
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            _ => Err(ApiError(format!("`{key}` is not a number"))),
        },
        _ => Err(ApiError(format!("`{key}` is not a number"))),
    }
}

fn num_field(v: &Json, key: &str) -> Result<f64, ApiError> {
    num_from_json(field(v, key)?, key)
}

/// Encodes a trial outcome.
pub fn outcome_to_json(o: &TrialOutcome) -> Json {
    obj([
        ("objective", o.objective.map_or(Json::Null, tagged_num)),
        (
            "failure",
            o.failure
                .as_ref()
                .map_or(Json::Null, |f| Json::Str(f.clone())),
        ),
        ("tta_secs", tagged_num(o.tta_secs)),
        ("cost_usd", tagged_num(o.cost_usd)),
        ("throughput", tagged_num(o.throughput)),
        ("staleness_steps", tagged_num(o.staleness_steps)),
        (
            "search_cost_machine_secs",
            tagged_num(o.search_cost_machine_secs),
        ),
        ("censored_at", o.censored_at.map_or(Json::Null, tagged_num)),
        ("attempts", Json::Num(f64::from(o.attempts))),
    ])
}

/// Decodes a trial outcome.
///
/// # Errors
///
/// Returns [`ApiError`] on missing or mistyped fields.
pub fn outcome_from_json(v: &Json) -> Result<TrialOutcome, ApiError> {
    let opt_num = |key: &str| -> Result<Option<f64>, ApiError> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => num_from_json(x, key).map(Some),
        }
    };
    let failure = match v.get("failure") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err(ApiError("`failure` must be a string or null".into())),
    };
    Ok(TrialOutcome {
        objective: opt_num("objective")?,
        failure,
        tta_secs: num_field(v, "tta_secs")?,
        cost_usd: num_field(v, "cost_usd")?,
        throughput: num_field(v, "throughput")?,
        staleness_steps: num_field(v, "staleness_steps")?,
        search_cost_machine_secs: num_field(v, "search_cost_machine_secs")?,
        censored_at: opt_num("censored_at")?,
        attempts: field(v, "attempts")?
            .as_i64()
            .filter(|&a| (0..=i64::from(u32::MAX)).contains(&a))
            .ok_or_else(|| ApiError("`attempts` must be a non-negative integer".into()))?
            as u32,
    })
}

fn status_to_json(s: &ExecutionStatus) -> Json {
    match *s {
        ExecutionStatus::Ok => obj([("status", Json::Str("ok".into()))]),
        ExecutionStatus::TimedOut { elapsed } => obj([
            ("status", Json::Str("timed-out".into())),
            ("elapsed", tagged_num(elapsed)),
        ]),
        ExecutionStatus::Crashed { attempts } => obj([
            ("status", Json::Str("crashed".into())),
            ("crash_attempts", Json::Num(f64::from(attempts))),
        ]),
        ExecutionStatus::Oom => obj([("status", Json::Str("oom".into()))]),
    }
}

fn status_from_json(v: &Json) -> Result<ExecutionStatus, ApiError> {
    let name = field(v, "status")?
        .as_str()
        .ok_or_else(|| ApiError("`status` must be a string".into()))?;
    match name {
        "ok" => Ok(ExecutionStatus::Ok),
        "timed-out" => Ok(ExecutionStatus::TimedOut {
            elapsed: num_field(v, "elapsed")?,
        }),
        "crashed" => Ok(ExecutionStatus::Crashed {
            attempts: field(v, "crash_attempts")?
                .as_i64()
                .filter(|&a| (0..=i64::from(u32::MAX)).contains(&a))
                .ok_or_else(|| ApiError("`crash_attempts` must be a non-negative integer".into()))?
                as u32,
        }),
        "oom" => Ok(ExecutionStatus::Oom),
        other => Err(ApiError(format!("unknown execution status `{other}`"))),
    }
}

/// Encodes an executed trial (journal `report` records).
pub fn executed_to_json(e: &ExecutedTrial) -> Json {
    obj([
        ("outcome", outcome_to_json(&e.outcome)),
        ("exec", status_to_json(&e.status)),
        ("attempts", Json::Num(f64::from(e.attempts))),
        ("wasted_machine_secs", tagged_num(e.wasted_machine_secs)),
        ("backoff_secs", tagged_num(e.backoff_secs)),
    ])
}

/// Decodes a `POST /sessions/{id}/report` body or a journal `report`
/// record. Only `outcome` is required: execution metadata defaults to a
/// clean single-attempt run, matching a passthrough executor.
///
/// # Errors
///
/// Returns [`ApiError`] on missing or mistyped fields.
pub fn executed_from_json(v: &Json) -> Result<ExecutedTrial, ApiError> {
    let outcome = outcome_from_json(field(v, "outcome")?)?;
    let status = match v.get("exec") {
        None | Some(Json::Null) => ExecutionStatus::Ok,
        Some(s) => status_from_json(s)?,
    };
    let attempts = match v.get("attempts") {
        None => outcome.attempts,
        Some(a) => a
            .as_i64()
            .filter(|&a| (1..=i64::from(u32::MAX)).contains(&a))
            .ok_or_else(|| ApiError("`attempts` must be a positive integer".into()))?
            as u32,
    };
    let opt = |key: &str| -> Result<f64, ApiError> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(0.0),
            Some(x) => num_from_json(x, key),
        }
    };
    Ok(ExecutedTrial {
        outcome,
        status,
        attempts,
        wasted_machine_secs: opt("wasted_machine_secs")?,
        backoff_secs: opt("backoff_secs")?,
    })
}

/// Encodes a pending trial (the `suggest` response payload).
pub fn pending_to_json(p: &PendingTrial) -> Json {
    obj([
        ("done", Json::Bool(false)),
        ("trial", Json::Num(p.trial as f64)),
        ("config", config_to_json(&p.config)),
        ("rep", Json::Num(p.rep as f64)),
        ("fidelity", Json::Num(p.fidelity)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn spec() -> SessionSpec {
        SessionSpec {
            tuner: "bo".into(),
            budget: 12,
            seed: 7,
            max_nodes: 8,
            conditions: vec![
                StopCondition::CostBudget {
                    machine_secs: 5000.0,
                },
                StopCondition::AcquisitionBelow {
                    min_trials: 4,
                    threshold: 1e-9,
                    patience: 2,
                },
            ],
            warm_start: vec![mlconf_workloads::tunespace::default_config(8)],
            tenant: "team-a".into(),
            scenario: Some("congestion:7".into()),
            retune_policy: ReTunePolicy::OnDrift,
        }
    }

    #[test]
    fn tenant_defaults_and_is_validated() {
        let d = spec_from_json(&parse(r#"{"tuner":"bo","budget":5,"seed":1}"#).unwrap()).unwrap();
        assert_eq!(d.tenant, DEFAULT_TENANT);
        for body in [
            r#"{"tuner":"bo","budget":5,"seed":1,"tenant":""}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"tenant":7}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"tenant":"has space"}"#,
        ] {
            assert!(
                spec_from_json(&parse(body).unwrap()).is_err(),
                "should reject {body}"
            );
        }
    }

    #[test]
    fn spec_round_trips() {
        let s = spec();
        let back = spec_from_json(&parse(&spec_to_json(&s).render()).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn spec_validation_rejects_garbage() {
        for body in [
            r#"{}"#,
            r#"{"tuner":"bo"}"#,
            r#"{"tuner":"nope","budget":5,"seed":1}"#,
            r#"{"tuner":"bo","budget":0,"seed":1}"#,
            r#"{"tuner":"bo","budget":5,"seed":-1}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"max_nodes":2}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"conditions":[{"kind":"warp"}]}"#,
        ] {
            assert!(
                spec_from_json(&parse(body).unwrap()).is_err(),
                "should reject {body}"
            );
        }
    }

    #[test]
    fn spec_rejects_bad_scenario_and_retune_policy() {
        for body in [
            r#"{"tuner":"bo","budget":5,"seed":1,"scenario":"bogus-kind"}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"scenario":42}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"scenario":"congestion:x"}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"scenario":"congestion:1:-5"}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"scenario":"congestion:1:2:3"}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"retune_policy":"sometimes"}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"retune_policy":"always:0"}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"retune_policy":7}"#,
        ] {
            assert!(
                spec_from_json(&parse(body).unwrap()).is_err(),
                "should reject {body}"
            );
        }
    }

    #[test]
    fn spec_accepts_scenario_and_retune_policy_variants() {
        let s = spec_from_json(
            &parse(
                r#"{"tuner":"bo","budget":5,"seed":1,"scenario":"preemption:3:20000","retune_policy":"always:5"}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(s.scenario.as_deref(), Some("preemption:3:20000"));
        assert_eq!(s.retune_policy, ReTunePolicy::Always { every: 5 });
        // Round-trips through the journal codec.
        assert_eq!(
            spec_from_json(&parse(&spec_to_json(&s).render()).unwrap()).unwrap(),
            s
        );
        // Absent or null fields mean stationary world, no re-tuning.
        for body in [
            r#"{"tuner":"bo","budget":5,"seed":1}"#,
            r#"{"tuner":"bo","budget":5,"seed":1,"scenario":null,"retune_policy":null}"#,
        ] {
            let d = spec_from_json(&parse(body).unwrap()).unwrap();
            assert_eq!(d.scenario, None);
            assert_eq!(d.retune_policy, ReTunePolicy::Off);
        }
    }

    #[test]
    fn portfolio_spec_canonicalises_arms_into_the_name() {
        let s = spec_from_json(
            &parse(r#"{"tuner":"portfolio","arms":["bo","lhs"],"budget":5,"seed":1}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(s.tuner, "portfolio:bo,lhs");
        // The canonical form round-trips through the journal codec.
        assert_eq!(
            spec_from_json(&parse(&spec_to_json(&s).render()).unwrap()).unwrap(),
            s
        );
        // Bare `portfolio` (default arms) is accepted as-is.
        let d = spec_from_json(&parse(r#"{"tuner":"portfolio","budget":5,"seed":1}"#).unwrap())
            .unwrap();
        assert_eq!(d.tuner, "portfolio");
    }

    #[test]
    fn portfolio_spec_rejects_bad_arm_lists() {
        for body in [
            r#"{"tuner":"bo","arms":["lhs"],"budget":5,"seed":1}"#,
            r#"{"tuner":"portfolio","arms":[],"budget":5,"seed":1}"#,
            r#"{"tuner":"portfolio","arms":["bo",7],"budget":5,"seed":1}"#,
            r#"{"tuner":"portfolio","arms":["bo","bo"],"budget":5,"seed":1}"#,
            r#"{"tuner":"portfolio","arms":["bo","warp"],"budget":5,"seed":1}"#,
            r#"{"tuner":"portfolio:bo,,lhs","budget":5,"seed":1}"#,
        ] {
            assert!(
                spec_from_json(&parse(body).unwrap()).is_err(),
                "should reject {body}"
            );
        }
    }

    #[test]
    fn outcome_round_trips_including_nonfinite() {
        let ok = TrialOutcome {
            objective: Some(1234.5678901234),
            failure: None,
            tta_secs: 1234.5678901234,
            cost_usd: 0.300_000_000_000_000_04,
            throughput: 9999.25,
            staleness_steps: 0.5,
            search_cost_machine_secs: 777.125,
            censored_at: None,
            attempts: 1,
        };
        let failed = TrialOutcome::failed("oom: worker 3", 42.0);
        let censored = TrialOutcome {
            censored_at: Some(100.0),
            ..TrialOutcome::failed("timeout", 10.0)
        };
        for o in [ok, failed, censored] {
            let wire = outcome_to_json(&o).render();
            let back = outcome_from_json(&parse(&wire).unwrap()).unwrap();
            assert_eq!(o, back, "via {wire}");
        }
    }

    #[test]
    fn executed_round_trips_all_statuses() {
        for status in [
            ExecutionStatus::Ok,
            ExecutionStatus::TimedOut { elapsed: 12.5 },
            ExecutionStatus::Crashed { attempts: 3 },
            ExecutionStatus::Oom,
        ] {
            let e = ExecutedTrial {
                outcome: TrialOutcome::failed("x", 5.0),
                status,
                attempts: 3,
                wasted_machine_secs: 17.5,
                backoff_secs: 2.25,
            };
            let wire = executed_to_json(&e).render();
            let back = executed_from_json(&parse(&wire).unwrap()).unwrap();
            assert_eq!(e, back, "via {wire}");
        }
    }

    #[test]
    fn config_codec_enforces_the_space() {
        let space = standard_space(8);
        let cfg = mlconf_workloads::tunespace::default_config(8);
        let wire = config_to_json(&cfg).render();
        let back = config_from_json(&space, &parse(&wire).unwrap()).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(cfg.key(), back.key());

        // Missing, extra, mistyped, and out-of-domain params all fail.
        let missing = r#"{"num_nodes":4}"#;
        assert!(config_from_json(&space, &parse(missing).unwrap()).is_err());
        let Json::Obj(mut fields) = parse(&wire).unwrap() else {
            unreachable!()
        };
        fields.push(("bogus".into(), Json::Num(1.0)));
        assert!(config_from_json(&space, &Json::Obj(fields.clone())).is_err());
        fields.pop();
        fields[0].1 = Json::Str("four".into());
        assert!(config_from_json(&space, &Json::Obj(fields.clone())).is_err());
        fields[0].1 = Json::Num(-5.0);
        assert!(config_from_json(&space, &Json::Obj(fields)).is_err());
    }
}
