//! A small self-contained JSON tree: recursive-descent parser and
//! canonical renderer.
//!
//! The workspace has no serde_json (offline vendor stubs only), and the
//! service's determinism contract needs one property the standard
//! library already provides: Rust's `{}` formatting of `f64` prints the
//! shortest decimal string that round-trips, so render → parse is
//! bit-exact for every finite double. Non-finite values have no JSON
//! representation; the API layer tags them as strings (`"inf"`,
//! `"-inf"`, `"nan"`) before they reach this module.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`]; beyond it the input is
/// rejected rather than risking the parser's stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (rendering is therefore
    /// deterministic given deterministic construction).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an integer, if it is a number with no fractional
    /// part that fits `i64` exactly.
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 {
            Some(n as i64)
        } else {
            None
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip form; an integral value keeps a
                    // trailing ".0"-free form ("3"), which parses back to
                    // the identical f64.
                    let _ = write!(out, "{n}");
                } else {
                    // Defensive: non-finite numbers must be tagged by the
                    // caller before rendering.
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object from key/value pairs (insertion order preserved).
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing garbage is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Take the full UTF-8 character starting at the byte
                    // just consumed; the input came from a `&str`, and
                    // chars are always consumed whole, so this offset is
                    // a character boundary.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..]).expect("input was a str");
                    let c = s.chars().next().expect("peeked byte exists");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_before = self.digits();
        if digits_before == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = s.parse().map_err(|_| self.err("number out of range"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(self.err("number out of range"))
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for s in ["null", "true", "false", "0", "-1", "3.5", "\"hi\""] {
            let v = parse(s).unwrap();
            assert_eq!(v.render(), s);
        }
    }

    #[test]
    fn doubles_round_trip_bit_exact() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            123_456_789.123_456_79,
        ] {
            let rendered = Json::Num(x).render();
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {rendered}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#" {"a": [1, {"b": null}, "x\n\"y\""], "c": true} "#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn escapes_render_and_reparse() {
        let s = "quote\" slash\\ nl\n tab\t ctrl\u{0001} unicode\u{00e9}";
        let rendered = Json::Str(s.to_owned()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1f600}"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "01x",
            "{\"a\":1} extra",
            "nul",
            "- 1",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integral_doubles_render_without_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(parse("3").unwrap().as_f64(), Some(3.0));
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
