//! The serving loop: a `TcpListener` accept thread feeding a fixed pool
//! of worker threads over a channel, with graceful shutdown.
//!
//! Routing (all request/response bodies are JSON):
//!
//! | Method & path                | Action                              |
//! |------------------------------|-------------------------------------|
//! | `GET /healthz`               | liveness probe                      |
//! | `POST /sessions`             | create a session from a spec        |
//! | `GET /sessions`              | list session ids                    |
//! | `GET /sessions/{id}`         | status + incumbent + history        |
//! | `DELETE /sessions/{id}`      | drop the session and its journal    |
//! | `POST /sessions/{id}/suggest`| next trial to evaluate (ask)        |
//! | `POST /sessions/{id}/report` | completed-trial outcome (tell)      |
//!
//! Failures are `{"error": "..."}` with a matching 4xx/5xx status.

use crate::http::{read_request, write_response, ReadError, ReadLimits, Request};
use crate::json::{obj, parse, Json};
use crate::registry::{ServeError, SessionRegistry};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Directory for per-session journals.
    pub journal_dir: PathBuf,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Request head/body size limits.
    pub limits: ReadLimits,
    /// Requests served per connection before it is closed (bounds how
    /// long one client can pin a worker).
    pub max_requests_per_conn: usize,
}

impl ServeConfig {
    /// Defaults rooted at `journal_dir`.
    pub fn new(journal_dir: PathBuf) -> Self {
        ServeConfig {
            workers: 4,
            journal_dir,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            limits: ReadLimits::default(),
            max_requests_per_conn: 1000,
        }
    }
}

/// A bound, running server.
pub struct Server {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

/// A clonable handle that can stop the server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown: in-flight requests finish, workers drain, the
    /// accept loop exits. Idempotent.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), opens/recovers
    /// the registry, and starts the accept + worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind and journal-directory failures.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let registry = Arc::new(SessionRegistry::open(&config.journal_dir)?);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                let config = config.clone();
                std::thread::spawn(move || loop {
                    let stream = match rx.lock().expect("worker queue lock").recv() {
                        Ok(s) => s,
                        // Channel closed: the accept loop is gone.
                        Err(_) => return,
                    };
                    serve_connection(stream, &registry, &config);
                })
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A send can only fail if every worker died; nothing
                    // left to do but drop the connection.
                    let _ = tx.send(stream);
                }
            }
            // Dropping `tx` here closes the channel and lets workers
            // drain remaining connections, then exit.
        });

        Ok(Server {
            addr,
            accept_thread: Some(accept_thread),
            workers,
            shutdown,
        })
    }

    /// The bound address (reports the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle other threads can use to stop the server.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            addr: self.addr,
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Blocks until the server shuts down (via a [`ShutdownHandle`]).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.handle().shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Serves one connection: keep-alive request loop with timeouts.
fn serve_connection(stream: TcpStream, registry: &SessionRegistry, config: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    for served in 0.. {
        let request = match read_request(&mut reader, &config.limits) {
            Ok(r) => r,
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Bad { status, message }) => {
                let body = obj([("error", Json::Str(message.into()))]).render();
                let _ = write_response(&mut writer, status, &body, true);
                return;
            }
        };
        let close = request.wants_close() || served + 1 >= config.max_requests_per_conn;
        let (status, body) = match route(&request, registry) {
            Ok((status, v)) => (status, v.render()),
            Err(e) => (e.status, obj([("error", Json::Str(e.message))]).render()),
        };
        if write_response(&mut writer, status, &body, close).is_err() || close {
            return;
        }
    }
}

/// Dispatches one request against the registry.
fn route(request: &Request, registry: &SessionRegistry) -> Result<(u16, Json), ServeError> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok((200, obj([("ok", Json::Bool(true))]))),
        ("POST", ["sessions"]) => {
            let body = parse_body(request)?;
            registry.create(&body).map(|v| (201, v))
        }
        ("GET", ["sessions"]) => Ok((
            200,
            obj([(
                "sessions",
                Json::Arr(registry.list().into_iter().map(Json::Str).collect()),
            )]),
        )),
        ("GET", ["sessions", id]) => {
            let session = lookup(registry, id)?;
            let status = session.lock().expect("session lock").status_json();
            Ok((200, status))
        }
        ("DELETE", ["sessions", id]) => {
            if registry.delete(id) {
                Ok((200, obj([("deleted", Json::Str((*id).to_owned()))])))
            } else {
                Err(ServeError::not_found(format!("no session `{id}`")))
            }
        }
        ("POST", ["sessions", id, "suggest"]) => {
            let session = lookup(registry, id)?;
            let result = session.lock().expect("session lock").suggest()?;
            Ok((200, result))
        }
        ("POST", ["sessions", id, "report"]) => {
            let body = parse_body(request)?;
            let session = lookup(registry, id)?;
            let result = session.lock().expect("session lock").report(&body)?;
            Ok((200, result))
        }
        (_, ["healthz" | "sessions", ..]) => Err(ServeError {
            status: 405,
            message: format!("method {} not allowed here", request.method),
        }),
        _ => Err(ServeError::not_found(format!(
            "no route for {}",
            request.path
        ))),
    }
}

fn lookup(
    registry: &SessionRegistry,
    id: &str,
) -> Result<Arc<Mutex<crate::registry::ServedSession>>, ServeError> {
    registry
        .get(id)
        .ok_or_else(|| ServeError::not_found(format!("no session `{id}`")))
}

fn parse_body(request: &Request) -> Result<Json, ServeError> {
    let text = if request.body.trim().is_empty() {
        "{}"
    } else {
        &request.body
    };
    parse(text).map_err(|e| ServeError::bad_request(format!("invalid JSON body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::request as http;

    fn start(tag: &str) -> (Server, String, PathBuf) {
        let dir = std::env::temp_dir().join(format!("mlconf_server_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let server = Server::bind("127.0.0.1:0", ServeConfig::new(dir.clone())).unwrap();
        let addr = server.local_addr().to_string();
        (server, addr, dir)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (server, addr, dir) = start("routes");
        let (status, body) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));
        let (status, _) = http(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http(&addr, "PUT", "/sessions", None).unwrap();
        assert_eq!(status, 405);
        let (status, _) = http(&addr, "POST", "/sessions/zzz/suggest", None).unwrap();
        assert_eq!(status, 404);
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_bodies_get_400_and_server_survives() {
        let (server, addr, dir) = start("malformed");
        let (status, body) = http(&addr, "POST", "/sessions", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("error"));
        let (status, _) = http(
            &addr,
            "POST",
            "/sessions",
            Some("{\"tuner\":\"warp\",\"budget\":1,\"seed\":0}"),
        )
        .unwrap();
        assert_eq!(status, 400);
        // Still alive.
        let (status, _) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graceful_shutdown_unblocks_join() {
        let (server, addr, dir) = start("shutdown");
        let handle = server.handle();
        let joiner = std::thread::spawn(move || server.join());
        let (status, _) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        handle.shutdown();
        joiner.join().expect("join returns after shutdown");
        assert!(http(&addr, "GET", "/healthz", None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
