//! The serving loop: N sharded, readiness-driven IO threads, each
//! owning its connections outright — no shared worker pool, no global
//! queue, no lock crossing shard boundaries.
//!
//! An accept thread places each new connection on the least-loaded IO
//! shard with room (bounded by `queue_depth + 1` connections per
//! shard). Each shard thread multiplexes its connections with
//! non-blocking reads, incremental request framing
//! ([`crate::http::frame_len`]), and buffered non-blocking writes,
//! sleeping briefly only when none of its connections made progress.
//! Session state is sharded the same way ([`crate::registry`]), so two
//! requests against different sessions contend on nothing.
//!
//! Routing (all request/response bodies are JSON):
//!
//! | Method & path                | Action                              |
//! |------------------------------|-------------------------------------|
//! | `GET /healthz`               | readiness probe (503 when degraded) |
//! | `POST /sessions`             | create a session from a spec        |
//! | `GET /sessions`              | list session ids                    |
//! | `GET /sessions/{id}`         | status + incumbent + history        |
//! | `DELETE /sessions/{id}`      | drop the session and its journal    |
//! | `POST /sessions/{id}/suggest`| next trial to evaluate (ask)        |
//! | `POST /sessions/{id}/report` | completed-trial outcome (tell)      |
//!
//! Failures are `{"error": "..."}` with a matching 4xx/5xx status.
//!
//! # Admission control
//!
//! Two layers. Connection-level: when every IO shard is at capacity the
//! accept thread *sheds* — `429 Too Many Requests` + `Retry-After`,
//! then close — instead of queueing unbounded work. Tenant-level: with
//! `tenant_rps > 0`, every state-advancing request (`POST /sessions`,
//! `suggest`, `report`) is charged to its tenant's token bucket
//! ([`crate::quota`]) and over-rate tenants get 429 with a computed
//! `Retry-After`. Shutdown enters *drain* mode: in-flight requests
//! finish, while new connections — and new requests on live keep-alive
//! connections — get `503` + `Retry-After` until the grace period ends.
//!
//! # Resilience
//!
//! Request handling runs under `catch_unwind` and every lock is taken
//! with poison recovery, so one panicking request costs only its own
//! connection — never an IO shard, and never the server.

use crate::api::DEFAULT_TENANT;
use crate::http::{
    frame_len, read_request, write_response_with_retry, ReadError, ReadLimits, Request,
};
use crate::json::{obj, parse, Json};
use crate::quota::TenantQuotas;
use crate::registry::{lock_recover, RegistryConfig, ServeError, SessionRegistry};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `Retry-After` value (seconds) sent on shed (429 capacity) and drain
/// (503) responses. Quota 429s compute their own from the refill rate.
const RETRY_AFTER_SECS: u64 = 1;

/// How long an IO shard sleeps when none of its connections made
/// progress in a pass. Small enough to keep added latency well under a
/// millisecond; large enough that idle shards cost ~no CPU.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// IO + registry shards (each IO shard is one thread owning its
    /// connections; each registry shard is one lock + journal subdir).
    pub shards: usize,
    /// Directory for per-session journals (sharded beneath it).
    pub journal_dir: PathBuf,
    /// How long a connection may sit idle (no request bytes) before it
    /// is closed.
    pub read_timeout: Duration,
    /// How long a response write may stall before the connection is
    /// dropped.
    pub write_timeout: Duration,
    /// Request head/body size limits.
    pub limits: ReadLimits,
    /// Requests served per connection before it is closed (bounds how
    /// long one client can pin a connection slot).
    pub max_requests_per_conn: usize,
    /// Connections each IO shard will hold beyond the one it is
    /// serving; past `queue_depth + 1` per shard, new connections are
    /// shed with 429.
    pub queue_depth: usize,
    /// Checkpoint each session every N journaled operations (see
    /// [`crate::snapshot`]); 0 disables snapshots.
    pub snapshot_every: u64,
    /// How long shutdown keeps answering 503 while shards drain.
    pub drain_grace: Duration,
    /// Live in-memory session bound; 0 means unbounded. Idle sessions
    /// over the bound are evicted to disk and revived on next touch.
    pub max_sessions: usize,
    /// Per-tenant sustained requests/second; 0 disables tenant quotas.
    pub tenant_rps: f64,
    /// Per-tenant burst allowance; <= 0 defaults to `2 * tenant_rps`.
    pub tenant_burst: f64,
}

impl ServeConfig {
    /// Defaults rooted at `journal_dir`.
    pub fn new(journal_dir: PathBuf) -> Self {
        ServeConfig {
            shards: 4,
            journal_dir,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            limits: ReadLimits::default(),
            max_requests_per_conn: 1000,
            queue_depth: 64,
            snapshot_every: 0,
            drain_grace: Duration::from_secs(5),
            max_sessions: 0,
            tenant_rps: 0.0,
            tenant_burst: 0.0,
        }
    }
}

/// One IO shard's accept-side state: the handoff mailbox the accept
/// thread pushes new connections into, and the connection count that
/// bounds it (owned + handed-off, so shedding is decided without
/// touching the shard thread).
struct IoShard {
    handoff: Mutex<Vec<TcpStream>>,
    conns: AtomicUsize,
}

/// Everything the accept loop, IO shards, and request handlers share.
struct Ctx {
    registry: Arc<SessionRegistry>,
    quotas: Option<TenantQuotas>,
    config: ServeConfig,
    /// Per-shard connection capacity (`queue_depth + 1`).
    capacity: usize,
    io_shards: Vec<Arc<IoShard>>,
    /// Set by [`ShutdownHandle::shutdown`]: enter drain mode.
    shutdown: AtomicBool,
    /// Set when drain completes: IO shards drop everything and exit.
    stop: AtomicBool,
}

/// A bound, running server.
pub struct Server {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    ctx: Arc<Ctx>,
}

/// A clonable handle that can stop the server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
}

impl ShutdownHandle {
    /// Requests shutdown: the server enters drain mode (in-flight
    /// requests finish; new ones get 503 + `Retry-After`), then the
    /// accept loop and IO shards exit. Idempotent.
    pub fn shutdown(&self) {
        if self.ctx.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), opens/recovers
    /// the sharded registry, and starts the accept + IO shard threads.
    ///
    /// # Errors
    ///
    /// Propagates bind and journal-directory failures.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let nshards = config.shards.max(1);
        let registry = Arc::new(SessionRegistry::open(
            &config.journal_dir,
            RegistryConfig {
                snapshot_every: config.snapshot_every,
                shards: nshards,
                max_sessions: config.max_sessions,
            },
        )?);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let io_shards: Vec<Arc<IoShard>> = (0..nshards)
            .map(|_| {
                Arc::new(IoShard {
                    handoff: Mutex::new(Vec::new()),
                    conns: AtomicUsize::new(0),
                })
            })
            .collect();
        let ctx = Arc::new(Ctx {
            registry,
            quotas: TenantQuotas::new(config.tenant_rps, config.tenant_burst),
            capacity: config.queue_depth.max(1) + 1,
            config,
            io_shards,
            shutdown: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });

        let shard_threads = (0..nshards)
            .map(|k| {
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || shard_loop(k, &ctx))
            })
            .collect();
        let accept_ctx = Arc::clone(&ctx);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_ctx));

        Ok(Server {
            addr,
            accept_thread: Some(accept_thread),
            shard_threads,
            ctx,
        })
    }

    /// The bound address (reports the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle other threads can use to stop the server.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            addr: self.addr,
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Blocks until the server shuts down (via a [`ShutdownHandle`]).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.handle().shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Accepts connections and places each on an IO shard with room,
/// rotating the starting shard for fairness. When every shard is at
/// capacity the connection is shed with 429 — the accept thread writes
/// the tiny response itself; shards never see it.
fn accept_loop(listener: &TcpListener, ctx: &Ctx) {
    let nshards = ctx.io_shards.len();
    let mut next = 0usize;
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            if let Ok(stream) = stream {
                shed(stream, 503, "server is draining");
            }
            drain(listener, ctx);
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut stream = Some(stream);
        for i in 0..nshards {
            let k = (next + i) % nshards;
            let shard = &ctx.io_shards[k];
            // The accept thread is the only incrementer, so this
            // load-then-add never overshoots the capacity.
            if shard.conns.load(Ordering::Relaxed) < ctx.capacity {
                shard.conns.fetch_add(1, Ordering::Relaxed);
                lock_recover(&shard.handoff).push(stream.take().expect("stream not yet placed"));
                break;
            }
        }
        next = next.wrapping_add(1);
        if let Some(stream) = stream {
            shed(stream, 429, "server is at connection capacity");
        }
    }
    ctx.stop.store(true, Ordering::SeqCst);
}

/// Answers a connection the server will not serve (saturation or drain)
/// with a one-shot JSON error + `Retry-After`, then closes it.
fn shed(mut stream: TcpStream, status: u16, message: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let body = obj([("error", Json::Str(message.to_owned()))]).render();
    let _ = write_response_with_retry(&mut stream, status, &body, true, Some(RETRY_AFTER_SECS));
}

/// Drain mode: keep answering new connections with 503 + `Retry-After`
/// until every IO shard has released its connections (in-flight
/// requests answered, idle connections timed out), or the grace period
/// runs out.
fn drain(listener: &TcpListener, ctx: &Ctx) {
    let deadline = Instant::now() + ctx.config.drain_grace;
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let busy = || {
        ctx.io_shards
            .iter()
            .any(|s| s.conns.load(Ordering::Relaxed) > 0)
    };
    while Instant::now() < deadline && busy() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                shed(stream, 503, "server is draining");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// One IO shard: adopts handed-off connections, then loops pumping each
/// one (read → frame → handle → write) without ever blocking, so a slow
/// peer can't stall its neighbors.
fn shard_loop(k: usize, ctx: &Ctx) {
    let shard = &ctx.io_shards[k];
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        {
            let mut handoff = lock_recover(&shard.handoff);
            for stream in handoff.drain(..) {
                if stream.set_nonblocking(true).is_ok() {
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(stream));
                } else {
                    shard.conns.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        if ctx.stop.load(Ordering::SeqCst) {
            shard.conns.fetch_sub(conns.len(), Ordering::Relaxed);
            return;
        }
        let draining = ctx.shutdown.load(Ordering::SeqCst);
        let now = Instant::now();
        let mut progress = false;
        conns.retain_mut(|conn| match conn.pump(ctx, draining, now) {
            Pump::Progress => {
                progress = true;
                true
            }
            Pump::Idle => true,
            Pump::Drop => {
                shard.conns.fetch_sub(1, Ordering::Relaxed);
                false
            }
        });
        if !progress {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

/// What one pump pass did with a connection.
enum Pump {
    /// Bytes moved or a request was served; poll again immediately.
    Progress,
    /// Nothing to do; the connection stays registered.
    Idle,
    /// The connection is finished (cleanly or not); drop it.
    Drop,
}

/// Result of flushing buffered response bytes.
enum Flush {
    /// Wrote everything (or made progress writing).
    Progress,
    /// The socket would block before anything moved.
    Blocked,
    /// The peer is gone.
    Drop,
}

/// One multiplexed connection: accumulating read buffer, pending
/// response bytes, and keep-alive bookkeeping.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    served: usize,
    last_activity: Instant,
    close_after_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            served: 0,
            last_activity: Instant::now(),
            close_after_write: false,
        }
    }

    /// One non-blocking pass: flush pending writes, read what's
    /// available, serve at most one complete request, enforce idle and
    /// write-stall timeouts.
    fn pump(&mut self, ctx: &Ctx, draining: bool, now: Instant) -> Pump {
        if !self.out.is_empty() {
            match self.flush() {
                Flush::Drop => return Pump::Drop,
                Flush::Blocked => {
                    if now.duration_since(self.last_activity) > ctx.config.write_timeout {
                        return Pump::Drop;
                    }
                    return Pump::Idle;
                }
                Flush::Progress => {
                    self.last_activity = now;
                    if !self.out.is_empty() {
                        return Pump::Progress;
                    }
                    if self.close_after_write {
                        return Pump::Drop;
                    }
                }
            }
        }

        let mut progressed = false;
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Pump::Drop,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = now;
                    progressed = true;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Pump::Drop,
            }
        }

        if self.out.is_empty() && !self.buf.is_empty() {
            match frame_len(&self.buf, &ctx.config.limits) {
                Ok(None) => {}
                Ok(Some(n)) => {
                    let frame: Vec<u8> = self.buf.drain(..n).collect();
                    if !self.respond_to_frame(&frame, ctx, draining) {
                        return Pump::Drop;
                    }
                    progressed = true;
                    match self.flush() {
                        Flush::Drop => return Pump::Drop,
                        Flush::Blocked => {}
                        Flush::Progress => {
                            if self.out.is_empty() && self.close_after_write {
                                return Pump::Drop;
                            }
                        }
                    }
                    self.last_activity = now;
                }
                Err(ReadError::Bad { status, message }) => {
                    self.buf.clear();
                    self.queue_error(status, message);
                    if let Flush::Drop = self.flush() {
                        return Pump::Drop;
                    }
                    if self.out.is_empty() {
                        return Pump::Drop;
                    }
                    progressed = true;
                }
                Err(_) => return Pump::Drop,
            }
        }

        if progressed {
            Pump::Progress
        } else if now.duration_since(self.last_activity) > ctx.config.read_timeout {
            Pump::Drop
        } else {
            Pump::Idle
        }
    }

    /// Parses one complete frame and queues its response. Returns
    /// `false` when the connection should be dropped instead (handler
    /// panic, unreadable frame).
    fn respond_to_frame(&mut self, frame: &[u8], ctx: &Ctx, draining: bool) -> bool {
        let request = match read_request(&mut BufReader::new(frame), &ctx.config.limits) {
            Ok(r) => r,
            Err(ReadError::Bad { status, message }) => {
                self.queue_error(status, message);
                return true;
            }
            // frame_len guaranteed a complete head + body, so neither
            // Closed nor Io should be reachable; drop defensively.
            Err(_) => return false,
        };
        // Requests arriving on a live keep-alive connection after
        // shutdown began are "new work": refuse them so drain converges.
        if draining {
            let body = obj([("error", Json::Str("server is draining".into()))]).render();
            self.queue(503, &body, true, Some(RETRY_AFTER_SECS));
            return true;
        }
        self.served += 1;
        let close = request.wants_close() || self.served >= ctx.config.max_requests_per_conn;
        // A panicking request must not take the IO shard (let alone the
        // server) down with it: contain it, drop its connection, keep
        // serving the rest.
        let handled =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(&request, ctx)));
        let (status, body, retry_after) = match handled {
            Err(_) => {
                eprintln!(
                    "mlconf-serve: recovered from a panicking request; \
                     its connection was dropped"
                );
                return false;
            }
            Ok(Ok((status, v))) => (status, v.render(), None),
            Ok(Err(e)) => {
                let retry = e
                    .retry_after
                    .or((e.status == 503).then_some(RETRY_AFTER_SECS));
                (
                    e.status,
                    obj([("error", Json::Str(e.message))]).render(),
                    retry,
                )
            }
        };
        self.queue(status, &body, close, retry_after);
        true
    }

    /// Queues one rendered response for (non-blocking) writing.
    fn queue(&mut self, status: u16, body: &str, close: bool, retry_after: Option<u64>) {
        let mut bytes = Vec::with_capacity(body.len() + 128);
        // Writing into a Vec cannot fail.
        let _ = write_response_with_retry(&mut bytes, status, body, close, retry_after);
        self.out = bytes;
        self.out_pos = 0;
        self.close_after_write = close;
    }

    /// Queues a protocol-violation response (always closes after).
    fn queue_error(&mut self, status: u16, message: &str) {
        let body = obj([("error", Json::Str(message.into()))]).render();
        self.queue(status, &body, true, None);
    }

    /// Writes as much pending response as the socket accepts.
    fn flush(&mut self) -> Flush {
        let mut wrote = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Flush::Drop,
                Ok(n) => {
                    self.out_pos += n;
                    wrote = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return if wrote {
                        Flush::Progress
                    } else {
                        Flush::Blocked
                    };
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Flush::Drop,
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Flush::Progress
    }
}

/// Readiness probe: per shard, verifies the journal subdirectory
/// accepts writes (the write-ahead guarantee is unserviceable without
/// it) and that the shard has connection capacity. Healthy →
/// `200 {"ok":true,"shards":[...]}`; otherwise `503` with each failing
/// check named **with its shard** (`journal_dir_unwritable:shard-2`).
fn healthz(ctx: &Ctx) -> (u16, Json) {
    let mut degraded: Vec<Json> = Vec::new();
    let mut shards_json: Vec<Json> = Vec::new();
    for (k, stat) in ctx.registry.shard_stats().iter().enumerate() {
        let probe = stat.dir.join(".healthz.probe");
        let writable =
            std::fs::write(&probe, b"ok").is_ok() && std::fs::remove_file(&probe).is_ok();
        if !writable {
            degraded.push(Json::Str(format!("journal_dir_unwritable:shard-{k}")));
        }
        let conns = ctx
            .io_shards
            .get(k)
            .map_or(0, |s| s.conns.load(Ordering::Relaxed));
        if conns >= ctx.capacity {
            degraded.push(Json::Str(format!("connections_saturated:shard-{k}")));
        }
        shards_json.push(obj([
            ("shard", Json::Num(k as f64)),
            ("connections", Json::Num(conns as f64)),
            ("capacity", Json::Num(ctx.capacity as f64)),
            ("live_sessions", Json::Num(stat.live as f64)),
            ("parked_sessions", Json::Num(stat.parked as f64)),
            ("journal_dir_writable", Json::Bool(writable)),
        ]));
    }
    if degraded.is_empty() {
        (
            200,
            obj([("ok", Json::Bool(true)), ("shards", Json::Arr(shards_json))]),
        )
    } else {
        (
            503,
            obj([
                ("ok", Json::Bool(false)),
                ("degraded", Json::Arr(degraded)),
                ("shards", Json::Arr(shards_json)),
            ]),
        )
    }
}

/// Charges one request to `tenant`, mapping an empty bucket to 429.
fn admit(quotas: &TenantQuotas, tenant: &str) -> Result<(), ServeError> {
    quotas.admit(tenant).map_err(|wait| {
        ServeError::too_many_requests(format!("tenant `{tenant}` is over its request rate"), wait)
    })
}

/// Dispatches one request against the registry. State-advancing routes
/// (`POST`) pass tenant admission first; reads and deletes are never
/// throttled (a throttled tenant must still be able to observe and
/// free its sessions).
fn route(request: &Request, ctx: &Ctx) -> Result<(u16, Json), ServeError> {
    let registry = &ctx.registry;
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(healthz(ctx)),
        ("POST", ["sessions"]) => {
            let body = parse_body(request)?;
            if let Some(quotas) = &ctx.quotas {
                let tenant = body
                    .get("tenant")
                    .and_then(Json::as_str)
                    .unwrap_or(DEFAULT_TENANT);
                admit(quotas, tenant)?;
            }
            registry.create(&body).map(|v| (201, v))
        }
        ("GET", ["sessions"]) => Ok((
            200,
            obj([(
                "sessions",
                Json::Arr(registry.list().into_iter().map(Json::Str).collect()),
            )]),
        )),
        ("GET", ["sessions", id]) => {
            let session = lookup(registry, id)?;
            let status = lock_recover(&session).status_json();
            Ok((200, status))
        }
        ("DELETE", ["sessions", id]) => {
            if registry.delete(id) {
                Ok((200, obj([("deleted", Json::Str((*id).to_owned()))])))
            } else {
                Err(ServeError::not_found(format!("no session `{id}`")))
            }
        }
        ("POST", ["sessions", id, "suggest"]) => {
            let session = lookup(registry, id)?;
            if let Some(quotas) = &ctx.quotas {
                let tenant = lock_recover(&session).spec().tenant.clone();
                admit(quotas, &tenant)?;
            }
            let result = lock_recover(&session).suggest()?;
            Ok((200, result))
        }
        ("POST", ["sessions", id, "report"]) => {
            let body = parse_body(request)?;
            let session = lookup(registry, id)?;
            if let Some(quotas) = &ctx.quotas {
                let tenant = lock_recover(&session).spec().tenant.clone();
                admit(quotas, &tenant)?;
            }
            let result = lock_recover(&session).report(&body)?;
            Ok((200, result))
        }
        (_, ["healthz" | "sessions", ..]) => Err(ServeError {
            status: 405,
            message: format!("method {} not allowed here", request.method),
            retry_after: None,
        }),
        _ => Err(ServeError::not_found(format!(
            "no route for {}",
            request.path
        ))),
    }
}

fn lookup(
    registry: &SessionRegistry,
    id: &str,
) -> Result<Arc<Mutex<crate::registry::ServedSession>>, ServeError> {
    registry
        .get(id)
        .ok_or_else(|| ServeError::not_found(format!("no session `{id}`")))
}

fn parse_body(request: &Request) -> Result<Json, ServeError> {
    let text = if request.body.trim().is_empty() {
        "{}"
    } else {
        &request.body
    };
    parse(text).map_err(|e| ServeError::bad_request(format!("invalid JSON body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::request as http;

    fn start(tag: &str) -> (Server, String, PathBuf) {
        let dir = std::env::temp_dir().join(format!("mlconf_server_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let server = Server::bind("127.0.0.1:0", ServeConfig::new(dir.clone())).unwrap();
        let addr = server.local_addr().to_string();
        (server, addr, dir)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (server, addr, dir) = start("routes");
        let (status, body) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ok\":true"), "{body}");
        let (status, _) = http(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http(&addr, "PUT", "/sessions", None).unwrap();
        assert_eq!(status, 405);
        let (status, _) = http(&addr, "POST", "/sessions/zzz/suggest", None).unwrap();
        assert_eq!(status, 404);
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn healthz_reports_per_shard_state() {
        let (server, addr, dir) = start("pershard");
        let (status, body) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = parse(&body).unwrap();
        let shards = match parsed.get("shards") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("healthz must list shards, got {other:?}"),
        };
        assert_eq!(shards.len(), 4, "default shard count");
        for (k, shard) in shards.iter().enumerate() {
            assert_eq!(shard.get("shard").unwrap().as_i64(), Some(k as i64));
            assert!(shard.get("connections").is_some());
            assert!(shard.get("capacity").is_some());
            assert_eq!(
                shard.get("journal_dir_writable").unwrap().as_bool(),
                Some(true)
            );
        }
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_bodies_get_400_and_server_survives() {
        let (server, addr, dir) = start("malformed");
        let (status, body) = http(&addr, "POST", "/sessions", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("error"));
        let (status, _) = http(
            &addr,
            "POST",
            "/sessions",
            Some("{\"tuner\":\"warp\",\"budget\":1,\"seed\":0}"),
        )
        .unwrap();
        assert_eq!(status, 400);
        // Still alive.
        let (status, _) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graceful_shutdown_unblocks_join() {
        let (server, addr, dir) = start("shutdown");
        let handle = server.handle();
        let joiner = std::thread::spawn(move || server.join());
        let (status, _) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        handle.shutdown();
        joiner.join().expect("join returns after shutdown");
        assert!(http(&addr, "GET", "/healthz", None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn healthz_reports_unwritable_journal_dir() {
        let (server, addr, dir) = start("degraded");
        let (status, _) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        // Replace the journal tree with a file: every shard's probe now
        // fails, each named individually.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a dir").unwrap();
        let (status, body) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("journal_dir_unwritable"), "{body}");
        assert!(body.contains("shard-0"), "{body}");
        drop(server);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn tenant_over_rate_limit_gets_429_with_retry_after() {
        let dir = std::env::temp_dir().join(format!("mlconf_server_quota_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut config = ServeConfig::new(dir.clone());
        config.tenant_rps = 1.0;
        config.tenant_burst = 1.0;
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().to_string();
        let spec = r#"{"tuner":"random","budget":4,"seed":1,"max_nodes":8,"tenant":"team-a"}"#;
        let (status, body) = http(&addr, "POST", "/sessions", Some(spec)).unwrap();
        assert_eq!(status, 201, "{body}");

        // Burst spent: the same tenant's next create is throttled, with
        // a Retry-After header carrying the computed wait (raw socket so
        // the headers are visible).
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(
            stream,
            "POST /sessions HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{spec}",
            spec.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("retry-after: 1"), "{response}");
        assert!(response.contains("over its request rate"), "{response}");

        // A different tenant is unaffected.
        let other = spec.replace("team-a", "team-b");
        let (status, body) = http(&addr, "POST", "/sessions", Some(&other)).unwrap();
        assert_eq!(status, 201, "{body}");
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_shards_at_capacity_sheds_with_429() {
        let dir = std::env::temp_dir().join(format!("mlconf_server_shed_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut config = ServeConfig::new(dir.clone());
        config.shards = 1;
        config.queue_depth = 1; // capacity 2 connections
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().to_string();
        // Pin the shard's two slots with idle connections.
        let _a = TcpStream::connect(&addr).unwrap();
        let _b = TcpStream::connect(&addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // The third connection is shed by the accept thread.
        let mut c = TcpStream::connect(&addr).unwrap();
        let mut response = String::new();
        c.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("retry-after"), "{response}");
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }
}
