//! The serving loop: a `TcpListener` accept thread feeding a fixed pool
//! of worker threads over a **bounded** queue, with load shedding and
//! graceful drain.
//!
//! Routing (all request/response bodies are JSON):
//!
//! | Method & path                | Action                              |
//! |------------------------------|-------------------------------------|
//! | `GET /healthz`               | readiness probe (503 when degraded) |
//! | `POST /sessions`             | create a session from a spec        |
//! | `GET /sessions`              | list session ids                    |
//! | `GET /sessions/{id}`         | status + incumbent + history        |
//! | `DELETE /sessions/{id}`      | drop the session and its journal    |
//! | `POST /sessions/{id}/suggest`| next trial to evaluate (ask)        |
//! | `POST /sessions/{id}/report` | completed-trial outcome (tell)      |
//!
//! Failures are `{"error": "..."}` with a matching 4xx/5xx status.
//!
//! # Overload behavior
//!
//! The accept → worker queue holds at most `queue_depth` connections.
//! When it is full the accept thread *sheds* the connection: it answers
//! `429 Too Many Requests` with a `Retry-After` header and closes,
//! instead of queueing unbounded work (and unbounded memory) behind
//! saturated workers. Shutdown enters *drain* mode: workers finish
//! in-flight and queued requests, while new connections — and new
//! requests on live keep-alive connections — get `503` + `Retry-After`
//! until the drain grace period ends.
//!
//! # Worker resilience
//!
//! Each connection is served under `catch_unwind`, and every lock is
//! taken with poison recovery, so one panicking request costs only its
//! own connection — never a worker thread, and never the whole pool.

use crate::http::{
    read_request, write_response, write_response_with_retry, ReadError, ReadLimits, Request,
};
use crate::json::{obj, parse, Json};
use crate::registry::{lock_recover, ServeError, SessionRegistry};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `Retry-After` value (seconds) sent on shed (429) and drain (503)
/// responses.
const RETRY_AFTER_SECS: u64 = 1;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Directory for per-session journals.
    pub journal_dir: PathBuf,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Request head/body size limits.
    pub limits: ReadLimits,
    /// Requests served per connection before it is closed (bounds how
    /// long one client can pin a worker).
    pub max_requests_per_conn: usize,
    /// Accepted connections that may wait for a worker before new ones
    /// are shed with 429.
    pub queue_depth: usize,
    /// Checkpoint each session every N journaled operations (see
    /// [`crate::snapshot`]); 0 disables snapshots.
    pub snapshot_every: u64,
    /// How long shutdown keeps answering 503 while workers drain.
    pub drain_grace: Duration,
}

impl ServeConfig {
    /// Defaults rooted at `journal_dir`.
    pub fn new(journal_dir: PathBuf) -> Self {
        ServeConfig {
            workers: 4,
            journal_dir,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            limits: ReadLimits::default(),
            max_requests_per_conn: 1000,
            queue_depth: 64,
            snapshot_every: 0,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// The bounded accept → worker connection queue.
///
/// Hand-built on `Mutex<VecDeque> + Condvar` (the workspace is
/// dependency-free): `try_push` never blocks the accept thread — a full
/// queue is the caller's signal to shed — and `pop` blocks workers
/// until a connection, or closure, arrives. `active` counts connections
/// currently inside workers so drain can tell "queue empty" from
/// "actually finished".
struct WorkQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    depth: usize,
}

struct QueueState {
    queue: VecDeque<TcpStream>,
    active: usize,
    closed: bool,
}

impl WorkQueue {
    fn new(depth: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                active: 0,
                closed: false,
            }),
            available: Condvar::new(),
            depth: depth.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues a connection, or hands it back when the queue is full
    /// (saturation: shed) or closed (drain: refuse).
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.closed || state.queue.len() >= self.depth {
            return Err(stream);
        }
        state.queue.push_back(stream);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available (marking it active) or
    /// the queue is closed and empty (`None`: the worker should exit).
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.queue.pop_front() {
                state.active += 1;
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Marks one popped connection as finished.
    fn done(&self) {
        let mut state = self.lock();
        state.active = state.active.saturating_sub(1);
        drop(state);
        // Drain polls `is_idle`; nothing waits on a condvar for this.
    }

    /// Closes the queue: workers drain what is queued, then exit.
    fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Whether a newly accepted connection would be shed right now.
    fn is_saturated(&self) -> bool {
        let state = self.lock();
        state.closed || state.queue.len() >= self.depth
    }

    /// No queued connections and no worker mid-connection.
    fn is_idle(&self) -> bool {
        let state = self.lock();
        state.queue.is_empty() && state.active == 0
    }
}

/// A bound, running server.
pub struct Server {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

/// A clonable handle that can stop the server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown: the server enters drain mode (in-flight and
    /// queued requests finish; new ones get 503 + `Retry-After`), then
    /// the accept loop and workers exit. Idempotent.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), opens/recovers
    /// the registry, and starts the accept + worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind and journal-directory failures.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let registry = Arc::new(SessionRegistry::open(
            &config.journal_dir,
            config.snapshot_every,
        )?);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(WorkQueue::new(config.queue_depth));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                let config = config.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    while let Some(stream) = queue.pop() {
                        // A panicking request must not take the worker
                        // (let alone the pool) down with it: contain it,
                        // drop its connection, keep serving.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                serve_connection(stream, &registry, &config, &shutdown, &queue);
                            }));
                        queue.done();
                        if outcome.is_err() {
                            eprintln!(
                                "mlconf-serve: worker recovered from a panicking request; \
                                 its connection was dropped"
                            );
                        }
                    }
                })
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_queue = Arc::clone(&queue);
        let drain_grace = config.drain_grace;
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    if let Ok(stream) = stream {
                        shed(stream, 503, "server is draining");
                    }
                    drain(&listener, &accept_queue, drain_grace);
                    break;
                }
                let Ok(stream) = stream else { continue };
                if let Err(stream) = accept_queue.try_push(stream) {
                    // Saturated: answer instead of queueing unbounded
                    // work. The accept thread writes the tiny shed
                    // response itself; workers never see it.
                    shed(stream, 429, "worker queue is full");
                }
            }
            accept_queue.close();
        });

        Ok(Server {
            addr,
            accept_thread: Some(accept_thread),
            workers,
            shutdown,
        })
    }

    /// The bound address (reports the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle other threads can use to stop the server.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            addr: self.addr,
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Blocks until the server shuts down (via a [`ShutdownHandle`]).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.handle().shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Answers a connection the server will not serve (saturation or drain)
/// with a one-shot JSON error + `Retry-After`, then closes it.
fn shed(mut stream: TcpStream, status: u16, message: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let body = obj([("error", Json::Str(message.to_owned()))]).render();
    let _ = write_response_with_retry(&mut stream, status, &body, true, Some(RETRY_AFTER_SECS));
}

/// Drain mode: keep answering new connections with 503 + `Retry-After`
/// until the workers have finished every in-flight and queued request,
/// or the grace period runs out.
fn drain(listener: &TcpListener, queue: &WorkQueue, grace: Duration) {
    let deadline = Instant::now() + grace;
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while Instant::now() < deadline && !queue.is_idle() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                shed(stream, 503, "server is draining");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Serves one connection: keep-alive request loop with timeouts.
fn serve_connection(
    stream: TcpStream,
    registry: &SessionRegistry,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    queue: &WorkQueue,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    for served in 0.. {
        let request = match read_request(&mut reader, &config.limits) {
            Ok(r) => r,
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Bad { status, message }) => {
                let body = obj([("error", Json::Str(message.into()))]).render();
                let _ = write_response(&mut writer, status, &body, true);
                return;
            }
        };
        // Requests arriving on a live keep-alive connection after
        // shutdown began are "new work": refuse them so drain converges.
        if shutdown.load(Ordering::SeqCst) {
            let body = obj([("error", Json::Str("server is draining".into()))]).render();
            let _ =
                write_response_with_retry(&mut writer, 503, &body, true, Some(RETRY_AFTER_SECS));
            return;
        }
        let close = request.wants_close() || served + 1 >= config.max_requests_per_conn;
        let health = HealthCtx {
            journal_dir: &config.journal_dir,
            queue,
        };
        let (status, body) = match route(&request, registry, &health) {
            Ok((status, v)) => (status, v.render()),
            Err(e) => (e.status, obj([("error", Json::Str(e.message))]).render()),
        };
        let retry_after = (status == 503).then_some(RETRY_AFTER_SECS);
        if write_response_with_retry(&mut writer, status, &body, close, retry_after).is_err()
            || close
        {
            return;
        }
    }
}

/// What `GET /healthz` inspects.
struct HealthCtx<'a> {
    journal_dir: &'a Path,
    queue: &'a WorkQueue,
}

/// Readiness probe: verifies the journal directory accepts writes (the
/// write-ahead guarantee is unserviceable without it) and that the
/// worker queue is not saturated. Healthy → `200 {"ok":true}`;
/// otherwise `503` with the failing checks named.
fn healthz(health: &HealthCtx<'_>) -> (u16, Json) {
    let mut degraded: Vec<Json> = Vec::new();
    let probe = health.journal_dir.join(".healthz.probe");
    let writable = std::fs::write(&probe, b"ok").is_ok() && std::fs::remove_file(&probe).is_ok();
    if !writable {
        degraded.push(Json::Str("journal_dir_unwritable".into()));
    }
    if health.queue.is_saturated() {
        degraded.push(Json::Str("worker_queue_saturated".into()));
    }
    if degraded.is_empty() {
        (200, obj([("ok", Json::Bool(true))]))
    } else {
        (
            503,
            obj([("ok", Json::Bool(false)), ("degraded", Json::Arr(degraded))]),
        )
    }
}

/// Dispatches one request against the registry.
fn route(
    request: &Request,
    registry: &SessionRegistry,
    health: &HealthCtx<'_>,
) -> Result<(u16, Json), ServeError> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(healthz(health)),
        ("POST", ["sessions"]) => {
            let body = parse_body(request)?;
            registry.create(&body).map(|v| (201, v))
        }
        ("GET", ["sessions"]) => Ok((
            200,
            obj([(
                "sessions",
                Json::Arr(registry.list().into_iter().map(Json::Str).collect()),
            )]),
        )),
        ("GET", ["sessions", id]) => {
            let session = lookup(registry, id)?;
            let status = lock_recover(&session).status_json();
            Ok((200, status))
        }
        ("DELETE", ["sessions", id]) => {
            if registry.delete(id) {
                Ok((200, obj([("deleted", Json::Str((*id).to_owned()))])))
            } else {
                Err(ServeError::not_found(format!("no session `{id}`")))
            }
        }
        ("POST", ["sessions", id, "suggest"]) => {
            let session = lookup(registry, id)?;
            let result = lock_recover(&session).suggest()?;
            Ok((200, result))
        }
        ("POST", ["sessions", id, "report"]) => {
            let body = parse_body(request)?;
            let session = lookup(registry, id)?;
            let result = lock_recover(&session).report(&body)?;
            Ok((200, result))
        }
        (_, ["healthz" | "sessions", ..]) => Err(ServeError {
            status: 405,
            message: format!("method {} not allowed here", request.method),
        }),
        _ => Err(ServeError::not_found(format!(
            "no route for {}",
            request.path
        ))),
    }
}

fn lookup(
    registry: &SessionRegistry,
    id: &str,
) -> Result<Arc<Mutex<crate::registry::ServedSession>>, ServeError> {
    registry
        .get(id)
        .ok_or_else(|| ServeError::not_found(format!("no session `{id}`")))
}

fn parse_body(request: &Request) -> Result<Json, ServeError> {
    let text = if request.body.trim().is_empty() {
        "{}"
    } else {
        &request.body
    };
    parse(text).map_err(|e| ServeError::bad_request(format!("invalid JSON body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::request as http;

    fn start(tag: &str) -> (Server, String, PathBuf) {
        let dir = std::env::temp_dir().join(format!("mlconf_server_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let server = Server::bind("127.0.0.1:0", ServeConfig::new(dir.clone())).unwrap();
        let addr = server.local_addr().to_string();
        (server, addr, dir)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (server, addr, dir) = start("routes");
        let (status, body) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));
        let (status, _) = http(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http(&addr, "PUT", "/sessions", None).unwrap();
        assert_eq!(status, 405);
        let (status, _) = http(&addr, "POST", "/sessions/zzz/suggest", None).unwrap();
        assert_eq!(status, 404);
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_bodies_get_400_and_server_survives() {
        let (server, addr, dir) = start("malformed");
        let (status, body) = http(&addr, "POST", "/sessions", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("error"));
        let (status, _) = http(
            &addr,
            "POST",
            "/sessions",
            Some("{\"tuner\":\"warp\",\"budget\":1,\"seed\":0}"),
        )
        .unwrap();
        assert_eq!(status, 400);
        // Still alive.
        let (status, _) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graceful_shutdown_unblocks_join() {
        let (server, addr, dir) = start("shutdown");
        let handle = server.handle();
        let joiner = std::thread::spawn(move || server.join());
        let (status, _) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        handle.shutdown();
        joiner.join().expect("join returns after shutdown");
        assert!(http(&addr, "GET", "/healthz", None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn healthz_reports_unwritable_journal_dir() {
        let (server, addr, dir) = start("degraded");
        let (status, _) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        // Replace the journal directory with a file: probes now fail.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a dir").unwrap();
        let (status, body) = http(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("journal_dir_unwritable"), "{body}");
        drop(server);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn work_queue_sheds_when_full_and_drains_on_close() {
        let queue = WorkQueue::new(1);
        assert!(!queue.is_saturated());
        assert!(queue.is_idle());
        // Stand in for connections with loopback sockets.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        assert!(queue.try_push(a).is_ok());
        assert!(queue.is_saturated());
        assert!(
            queue.try_push(b).is_err(),
            "full queue hands the stream back"
        );
        let popped = queue.pop().unwrap();
        drop(popped);
        assert!(!queue.is_idle(), "popped connection is active until done()");
        queue.done();
        assert!(queue.is_idle());
        queue.close();
        assert!(queue.pop().is_none(), "closed + empty means worker exit");
    }
}
