//! Journal snapshots and compaction: O(records-since-snapshot) restarts.
//!
//! PR 4's recovery replays every journal record, so a restart costs
//! O(run length). This module periodically checkpoints each session's
//! full state — the [`AskTellSession`](mlconf_tuners::session::AskTellSession)
//! resume state plus the tuner's [`TunerState`] — through the service's
//! bit-exact JSON codec, then truncates the active journal to the
//! records that follow.
//!
//! # On-disk layout (per session `<id>`)
//!
//! - `<id>.jsonl` — the **active** journal. Starts with either the
//!   `create` record (never snapshotted) or a `{"op":"base","seq":N}`
//!   marker meaning: operations `[0, N)` were compacted; the records
//!   here sit at stream positions `N`, `N+1`, ….
//! - `<id>.snap` — the latest checkpoint, one checksummed JSON line,
//!   always installed by atomic rename.
//! - `<id>.hist` — the archive: every operation ever rotated out of the
//!   active journal, in stream order. Only read when the snapshot is
//!   torn, corrupt, or rejected — it makes full-journal replay possible
//!   *after* compaction, which is what lets a bad checkpoint degrade to
//!   PR 4 recovery instead of data loss.
//!
//! # Crash-ordered installation
//!
//! [`install`] performs, in order: (1) top up the archive with the
//! active records it is missing and fsync it, (2) write the new
//! checkpoint to a temp file, fsync, rename over `<id>.snap`, fsync the
//! directory, (3) write a fresh one-line active journal (`base` marker)
//! to a temp file, fsync, rename over `<id>.jsonl`, fsync the directory.
//! A crash between any two steps leaves a recoverable combination: the
//! archive append is idempotent (records are appended by stream
//! position, never duplicated), and until step (3) lands the old active
//! journal still covers everything past the *previous* checkpoint.
//!
//! # Restore contract
//!
//! A checkpoint restores bit-identically: the session resume state
//! carries the driver RNG position and float accumulators through the
//! tagged shortest-round-trip codec, and the tuner state round-trips
//! through [`Tuner::checkpoint`]/[`Tuner::restore`]. Golden tests assert
//! snapshot recovery ≡ full-journal replay at seeds {11, 22, 33}
//! including faults and censoring. Tuners without checkpoint support
//! simply never get a `.snap` and keep full-replay recovery.

use crate::api::{
    config_from_json, config_to_json, num_from_json, outcome_from_json, outcome_to_json,
    pending_to_json, spec_from_json, spec_to_json, tagged_num, ApiError, SessionSpec,
};
use crate::journal::{fsync_dir, read_journal, JournalOp};
use crate::json::{obj, parse, Json};
use mlconf_space::space::ConfigSpace;
use mlconf_tuners::session::{PendingTrial, SessionResumeState, StopReason};
use mlconf_tuners::tuner::{StateValue, TrialHistory, TunerState};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// The three on-disk files backing one session.
#[derive(Debug, Clone)]
pub struct SessionFiles {
    /// Active journal (`<id>.jsonl`).
    pub active: PathBuf,
    /// Latest checkpoint (`<id>.snap`).
    pub snap: PathBuf,
    /// Rotated-records archive (`<id>.hist`).
    pub hist: PathBuf,
}

impl SessionFiles {
    /// File paths for session `id` under `journal_dir`.
    pub fn new(journal_dir: &Path, id: &str) -> Self {
        SessionFiles {
            active: journal_dir.join(format!("{id}.jsonl")),
            snap: journal_dir.join(format!("{id}.snap")),
            hist: journal_dir.join(format!("{id}.hist")),
        }
    }

    /// Removes all three files, plus any temp files a crashed
    /// checkpoint left behind (session deletion). Best-effort.
    pub fn remove_all(&self) {
        std::fs::remove_file(&self.active).ok();
        std::fs::remove_file(&self.snap).ok();
        std::fs::remove_file(&self.hist).ok();
        std::fs::remove_file(self.snap.with_extension("snap.tmp")).ok();
        std::fs::remove_file(self.active.with_extension("jsonl.tmp")).ok();
    }
}

/// One full checkpoint of a served session.
#[derive(Debug, Clone)]
pub struct SnapshotData {
    /// Number of journal operations (create included) this checkpoint
    /// covers: the state equals replaying stream positions `[0, seq)`.
    pub seq: u64,
    /// The creating spec.
    pub spec: SessionSpec,
    /// The state machine's non-derivable fields.
    pub session: SessionResumeState,
    /// The tuner's checkpoint.
    pub tuner: TunerState,
    /// Duplicate-rejection state: the last applied report's dedup key
    /// and the exact response it was acknowledged with.
    pub last_report: Option<(String, Json)>,
}

/// FNV-1a 64-bit, used as the snapshot integrity checksum. Not
/// cryptographic — it only needs to catch torn or bit-rotted files.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn u128_to_json(v: u128) -> Json {
    Json::Str(v.to_string())
}

fn u128_from_json(v: &Json, key: &str) -> Result<u128, ApiError> {
    v.as_str()
        .and_then(|s| s.parse::<u128>().ok())
        .ok_or_else(|| ApiError(format!("`{key}` is not a u128 decimal string")))
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ApiError> {
    v.get(key)
        .ok_or_else(|| ApiError(format!("missing snapshot field `{key}`")))
}

fn num_field(v: &Json, key: &str) -> Result<f64, ApiError> {
    num_from_json(field(v, key)?, key)
}

fn usize_field(v: &Json, key: &str) -> Result<usize, ApiError> {
    field(v, key)?
        .as_i64()
        .filter(|&n| n >= 0)
        .map(|n| n as usize)
        .ok_or_else(|| ApiError(format!("`{key}` must be a non-negative integer")))
}

fn history_to_json(history: &TrialHistory) -> Json {
    Json::Arr(
        history
            .trials()
            .iter()
            .map(|t| {
                obj([
                    ("config", config_to_json(&t.config)),
                    ("outcome", outcome_to_json(&t.outcome)),
                ])
            })
            .collect(),
    )
}

fn history_from_json(space: &ConfigSpace, v: &Json) -> Result<TrialHistory, ApiError> {
    let mut history = TrialHistory::new();
    for t in v
        .as_arr()
        .ok_or_else(|| ApiError("`history` must be an array".into()))?
    {
        history.push(
            config_from_json(space, field(t, "config")?)?,
            outcome_from_json(field(t, "outcome")?)?,
        );
    }
    Ok(history)
}

fn pending_from_json(space: &ConfigSpace, v: &Json) -> Result<PendingTrial, ApiError> {
    Ok(PendingTrial {
        trial: usize_field(v, "trial")?,
        config: config_from_json(space, field(v, "config")?)?,
        rep: field(v, "rep")?
            .as_i64()
            .filter(|&r| r >= 0)
            .ok_or_else(|| ApiError("`rep` must be a non-negative integer".into()))?
            as u64,
        fidelity: num_field(v, "fidelity")?,
    })
}

fn stats_to_json(s: &mlconf_tuners::session::StatsAggregator) -> Json {
    obj([
        ("started", Json::Num(s.started as f64)),
        ("completed", Json::Num(s.completed as f64)),
        ("improvements", Json::Num(s.improvements as f64)),
        (
            "best_objective",
            s.best_objective.map_or(Json::Null, tagged_num),
        ),
        (
            "stop_reason",
            s.stop_reason
                .map_or(Json::Null, |r| Json::Str(r.name().into())),
        ),
        ("timeouts", Json::Num(s.exec.timeouts as f64)),
        ("crashes", Json::Num(s.exec.crashes as f64)),
        ("ooms", Json::Num(s.exec.ooms as f64)),
        ("retries", Json::Num(s.exec.retries as f64)),
        (
            "wasted_machine_secs",
            tagged_num(s.exec.wasted_machine_secs),
        ),
        ("backoff_secs", tagged_num(s.exec.backoff_secs)),
        ("drift_events", Json::Num(s.drift_events as f64)),
        ("retune_count", Json::Num(s.retune_count as f64)),
    ])
}

fn opt_num(v: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => num_from_json(x, key).map(Some),
    }
}

fn stop_reason_from_json(v: &Json, key: &str) -> Result<Option<StopReason>, ApiError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => StopReason::from_name(s)
            .map(Some)
            .ok_or_else(|| ApiError(format!("unknown stop reason `{s}`"))),
        Some(_) => Err(ApiError(format!("`{key}` must be a string or null"))),
    }
}

fn stats_from_json(v: &Json) -> Result<mlconf_tuners::session::StatsAggregator, ApiError> {
    Ok(mlconf_tuners::session::StatsAggregator {
        exec: mlconf_tuners::session::ExecStats {
            timeouts: usize_field(v, "timeouts")?,
            crashes: usize_field(v, "crashes")?,
            ooms: usize_field(v, "ooms")?,
            retries: usize_field(v, "retries")?,
            wasted_machine_secs: num_field(v, "wasted_machine_secs")?,
            backoff_secs: num_field(v, "backoff_secs")?,
        },
        started: usize_field(v, "started")?,
        completed: usize_field(v, "completed")?,
        improvements: usize_field(v, "improvements")?,
        best_objective: opt_num(v, "best_objective")?,
        stop_reason: stop_reason_from_json(v, "stop_reason")?,
        drift_events: usize_field_or_zero(v, "drift_events")?,
        retune_count: usize_field_or_zero(v, "retune_count")?,
    })
}

/// Like [`usize_field`], but an absent key reads as zero — snapshots
/// written before the field existed stay restorable.
fn usize_field_or_zero(v: &Json, key: &str) -> Result<usize, ApiError> {
    match v.get(key) {
        None => Ok(0),
        Some(_) => usize_field(v, key),
    }
}

fn u64_field(v: &Json, key: &str) -> Result<u64, ApiError> {
    field(v, key)?
        .as_i64()
        .filter(|&n| n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| ApiError(format!("`{key}` must be a non-negative integer")))
}

fn drift_to_json(d: &mlconf_tuners::drift::DriftResumeState) -> Json {
    obj([
        (
            "key_stats",
            Json::Arr(
                d.key_stats
                    .iter()
                    .map(|(key, n, mean_log)| {
                        obj([
                            ("key", Json::Str(key.clone())),
                            ("n", Json::Num(*n as f64)),
                            ("mean_log", tagged_num(*mean_log)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("ph_pos", tagged_num(d.ph_pos)),
        ("ph_neg", tagged_num(d.ph_neg)),
        ("matched", Json::Num(d.matched as f64)),
        (
            "probe_queue",
            Json::Arr(d.probe_queue.iter().map(config_to_json).collect()),
        ),
        ("since_probe", Json::Num(d.since_probe as f64)),
        ("since_retune", Json::Num(d.since_retune as f64)),
        ("stale_before", Json::Num(d.stale_before as f64)),
        ("retuning", Json::Bool(d.retuning)),
        ("retune_count", Json::Num(d.retune_count as f64)),
        ("drift_events", Json::Num(d.drift_events as f64)),
    ])
}

fn drift_from_json(
    space: &ConfigSpace,
    v: &Json,
) -> Result<mlconf_tuners::drift::DriftResumeState, ApiError> {
    let key_stats = field(v, "key_stats")?
        .as_arr()
        .ok_or_else(|| ApiError("`key_stats` must be an array".into()))?
        .iter()
        .map(|e| {
            Ok((
                field(e, "key")?
                    .as_str()
                    .ok_or_else(|| ApiError("`key_stats.key` must be a string".into()))?
                    .to_owned(),
                u64_field(e, "n")?,
                num_field(e, "mean_log")?,
            ))
        })
        .collect::<Result<_, ApiError>>()?;
    let probe_queue = field(v, "probe_queue")?
        .as_arr()
        .ok_or_else(|| ApiError("`probe_queue` must be an array".into()))?
        .iter()
        .map(|c| config_from_json(space, c))
        .collect::<Result<_, _>>()?;
    Ok(mlconf_tuners::drift::DriftResumeState {
        key_stats,
        ph_pos: num_field(v, "ph_pos")?,
        ph_neg: num_field(v, "ph_neg")?,
        matched: u64_field(v, "matched")?,
        probe_queue,
        since_probe: usize_field(v, "since_probe")?,
        since_retune: usize_field(v, "since_retune")?,
        stale_before: usize_field(v, "stale_before")?,
        retuning: field(v, "retuning")?
            .as_bool()
            .ok_or_else(|| ApiError("`retuning` must be a bool".into()))?,
        retune_count: usize_field(v, "retune_count")?,
        drift_events: usize_field(v, "drift_events")?,
    })
}

fn session_to_json(s: &SessionResumeState) -> Json {
    obj([
        ("history", history_to_json(&s.history)),
        ("rng_state", u128_to_json(s.rng.0)),
        ("rng_inc", u128_to_json(s.rng.1)),
        (
            "warm_queue",
            Json::Arr(s.warm_queue.iter().map(config_to_json).collect()),
        ),
        (
            "acq_below",
            Json::Arr(s.acq_below.iter().map(|&n| Json::Num(n as f64)).collect()),
        ),
        ("cost_secs", tagged_num(s.cost_secs)),
        ("wall_secs", tagged_num(s.wall_secs)),
        ("best_seen", tagged_num(s.best_seen)),
        (
            "stop_reason",
            s.stop_reason
                .map_or(Json::Null, |r| Json::Str(r.name().into())),
        ),
        (
            "pending",
            s.pending.as_ref().map_or(Json::Null, pending_to_json),
        ),
        ("finished", Json::Bool(s.finished)),
        ("stats", stats_to_json(&s.stats)),
        ("drift", s.drift.as_ref().map_or(Json::Null, drift_to_json)),
    ])
}

fn session_from_json(space: &ConfigSpace, v: &Json) -> Result<SessionResumeState, ApiError> {
    let warm_queue = field(v, "warm_queue")?
        .as_arr()
        .ok_or_else(|| ApiError("`warm_queue` must be an array".into()))?
        .iter()
        .map(|c| config_from_json(space, c))
        .collect::<Result<_, _>>()?;
    let acq_below = field(v, "acq_below")?
        .as_arr()
        .ok_or_else(|| ApiError("`acq_below` must be an array".into()))?
        .iter()
        .map(|n| {
            n.as_i64()
                .filter(|&x| x >= 0)
                .map(|x| x as usize)
                .ok_or_else(|| ApiError("`acq_below` entries must be non-negative".into()))
        })
        .collect::<Result<_, _>>()?;
    let pending = match v.get("pending") {
        None | Some(Json::Null) => None,
        Some(p) => Some(pending_from_json(space, p)?),
    };
    // Absent (pre-drift snapshot) and explicit null both mean "no drift
    // controller state".
    let drift = match v.get("drift") {
        None | Some(Json::Null) => None,
        Some(d) => Some(drift_from_json(space, d)?),
    };
    Ok(SessionResumeState {
        history: history_from_json(space, field(v, "history")?)?,
        rng: (
            u128_from_json(field(v, "rng_state")?, "rng_state")?,
            u128_from_json(field(v, "rng_inc")?, "rng_inc")?,
        ),
        warm_queue,
        acq_below,
        cost_secs: num_field(v, "cost_secs")?,
        wall_secs: num_field(v, "wall_secs")?,
        best_seen: num_field(v, "best_seen")?,
        stop_reason: stop_reason_from_json(v, "stop_reason")?,
        pending,
        finished: field(v, "finished")?
            .as_bool()
            .ok_or_else(|| ApiError("`finished` must be a bool".into()))?,
        stats: stats_from_json(field(v, "stats")?)?,
        drift,
    })
}

fn state_value_to_json(v: &StateValue) -> Json {
    match v {
        StateValue::U64(n) => obj([("t", Json::Str("u64".into())), ("v", Json::Num(*n as f64))]),
        StateValue::U128(n) => obj([("t", Json::Str("u128".into())), ("v", u128_to_json(*n))]),
        StateValue::F64(x) => obj([("t", Json::Str("f64".into())), ("v", tagged_num(*x))]),
        StateValue::Str(s) => obj([("t", Json::Str("str".into())), ("v", Json::Str(s.clone()))]),
        StateValue::F64List(xs) => obj([
            ("t", Json::Str("f64s".into())),
            ("v", Json::Arr(xs.iter().map(|&x| tagged_num(x)).collect())),
        ]),
        StateValue::Config(c) => obj([("t", Json::Str("config".into())), ("v", config_to_json(c))]),
        StateValue::ConfigList(cs) => obj([
            ("t", Json::Str("configs".into())),
            ("v", Json::Arr(cs.iter().map(config_to_json).collect())),
        ]),
    }
}

fn state_value_from_json(space: &ConfigSpace, v: &Json) -> Result<StateValue, ApiError> {
    let tag = field(v, "t")?
        .as_str()
        .ok_or_else(|| ApiError("state value tag must be a string".into()))?;
    let val = field(v, "v")?;
    Ok(match tag {
        "u64" => StateValue::U64(
            val.as_i64()
                .filter(|&n| n >= 0)
                .ok_or_else(|| ApiError("u64 state value out of range".into()))? as u64,
        ),
        "u128" => StateValue::U128(u128_from_json(val, "v")?),
        "f64" => StateValue::F64(num_from_json(val, "v")?),
        "str" => StateValue::Str(
            val.as_str()
                .ok_or_else(|| ApiError("str state value must be a string".into()))?
                .to_owned(),
        ),
        "f64s" => StateValue::F64List(
            val.as_arr()
                .ok_or_else(|| ApiError("f64s state value must be an array".into()))?
                .iter()
                .map(|x| num_from_json(x, "v"))
                .collect::<Result<_, _>>()?,
        ),
        "config" => StateValue::Config(config_from_json(space, val)?),
        "configs" => StateValue::ConfigList(
            val.as_arr()
                .ok_or_else(|| ApiError("configs state value must be an array".into()))?
                .iter()
                .map(|c| config_from_json(space, c))
                .collect::<Result<_, _>>()?,
        ),
        other => return Err(ApiError(format!("unknown state value tag `{other}`"))),
    })
}

fn tuner_state_to_json(state: &TunerState) -> Json {
    Json::Arr(
        state
            .fields()
            .iter()
            .map(|(k, v)| obj([("k", Json::Str(k.clone())), ("val", state_value_to_json(v))]))
            .collect(),
    )
}

fn tuner_state_from_json(space: &ConfigSpace, v: &Json) -> Result<TunerState, ApiError> {
    let mut fields = Vec::new();
    for entry in v
        .as_arr()
        .ok_or_else(|| ApiError("tuner state must be an array".into()))?
    {
        let key = field(entry, "k")?
            .as_str()
            .ok_or_else(|| ApiError("tuner state key must be a string".into()))?
            .to_owned();
        fields.push((key, state_value_from_json(space, field(entry, "val")?)?));
    }
    Ok(TunerState::from_fields(fields))
}

/// Encodes a snapshot as its on-disk JSON (without the checksum frame).
pub fn snapshot_to_json(s: &SnapshotData) -> Json {
    let last_report = s.last_report.as_ref().map_or(Json::Null, |(k, resp)| {
        obj([("key", Json::Str(k.clone())), ("response", resp.clone())])
    });
    obj([
        ("seq", Json::Num(s.seq as f64)),
        ("spec", spec_to_json(&s.spec)),
        ("session", session_to_json(&s.session)),
        ("tuner", tuner_state_to_json(&s.tuner)),
        ("last_report", last_report),
    ])
}

/// Decodes a snapshot from its on-disk JSON.
///
/// # Errors
///
/// Returns [`ApiError`] on any missing or mistyped field.
pub fn snapshot_from_json(v: &Json) -> Result<SnapshotData, ApiError> {
    let spec = spec_from_json(field(v, "spec")?)?;
    let space = spec.space();
    let last_report = match v.get("last_report") {
        None | Some(Json::Null) => None,
        Some(lr) => Some((
            field(lr, "key")?
                .as_str()
                .ok_or_else(|| ApiError("`last_report.key` must be a string".into()))?
                .to_owned(),
            field(lr, "response")?.clone(),
        )),
    };
    Ok(SnapshotData {
        seq: field(v, "seq")?
            .as_i64()
            .filter(|&s| s >= 0)
            .ok_or_else(|| ApiError("`seq` must be a non-negative integer".into()))?
            as u64,
        session: session_from_json(&space, field(v, "session")?)?,
        tuner: tuner_state_from_json(&space, field(v, "tuner")?)?,
        spec,
        last_report,
    })
}

/// Loads and verifies a checkpoint file. Returns `None` — never an
/// error — on a missing, torn, corrupt, or checksum-failing file:
/// every such case falls back to full-journal replay.
pub fn load(path: &Path) -> Option<SnapshotData> {
    let content = std::fs::read_to_string(path).ok()?;
    let frame = parse(content.trim_end()).ok()?;
    let crc = frame.get("crc")?.as_str()?;
    let data = frame.get("data")?;
    let rendered = data.render();
    if format!("{:016x}", fnv1a(rendered.as_bytes())) != crc {
        return None;
    }
    snapshot_from_json(data).ok()
}

/// Number of complete (newline-terminated) lines in `path`, and the
/// byte offset where the last complete line ends. Missing file = 0.
fn complete_lines(path: &Path) -> std::io::Result<(u64, u64)> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, 0)),
        Err(e) => return Err(e),
    }
    let mut lines = 0u64;
    let mut end = 0u64;
    for (i, &b) in buf.iter().enumerate() {
        if b == b'\n' {
            lines += 1;
            end = (i + 1) as u64;
        }
    }
    Ok((lines, end))
}

/// Installs a checkpoint: archives the active journal's records, writes
/// the snapshot atomically, and truncates the active journal to a
/// `base` marker. The active journal's own `base` marker (or its
/// absence, meaning 0) tells `install` which stream positions its
/// records occupy; `data.seq` must equal that base plus the number of
/// records present, i.e. the checkpoint covers exactly the acknowledged
/// stream.
///
/// # Errors
///
/// Propagates I/O errors; the caller logs and keeps serving (a failed
/// snapshot only costs restart speed, never correctness — the active
/// journal is untouched until the final rename).
pub fn install(files: &SessionFiles, data: &SnapshotData) -> std::io::Result<()> {
    let dir = files
        .active
        .parent()
        .ok_or_else(|| std::io::Error::other("journal path has no parent"))?;

    // (1) Top up the archive. The archive must end holding exactly the
    // stream's records [0, seq); a previous crashed install may have
    // left it already holding some (or all, or a torn tail) of them.
    let (hist_lines, hist_end) = complete_lines(&files.hist)?;
    let active_raw = std::fs::read_to_string(&files.active)?;
    let mut active_records: Vec<&str> = active_raw.lines().collect();
    let active_base = active_records
        .first()
        .and_then(|l| parse(l).ok())
        .filter(|v| v.get("op").and_then(Json::as_str) == Some("base"))
        .and_then(|v| v.get("seq").and_then(Json::as_i64))
        .filter(|&s| s >= 0)
        .map(|s| s as u64);
    if active_base.is_some() {
        active_records.remove(0);
    }
    let active_base = active_base.unwrap_or(0);
    if active_base + active_records.len() as u64 != data.seq {
        return Err(std::io::Error::other(format!(
            "checkpoint seq {} disagrees with journal (base {active_base} + {} records)",
            data.seq,
            active_records.len()
        )));
    }
    // Records the archive is missing: stream positions [hist_lines, seq).
    let have = hist_lines.saturating_sub(active_base); // active records already archived
    let missing: Vec<&str> = if hist_lines < active_base {
        return Err(std::io::Error::other(format!(
            "archive holds {hist_lines} records but active journal starts at {active_base}"
        )));
    } else {
        active_records.iter().skip(have as usize).copied().collect()
    };
    {
        let mut hist = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&files.hist)?;
        // Drop a torn tail from a crashed earlier append.
        hist.set_len(hist_end)?;
        use std::io::Seek as _;
        hist.seek(std::io::SeekFrom::End(0))?;
        let mut out = String::new();
        for line in missing {
            out.push_str(line);
            out.push('\n');
        }
        hist.write_all(out.as_bytes())?;
        hist.flush()?;
        hist.sync_data()?;
    }
    fsync_dir(dir)?;

    // (2) Atomically install the checkpoint.
    let rendered = snapshot_to_json(data).render();
    let frame = obj([
        (
            "crc",
            Json::Str(format!("{:016x}", fnv1a(rendered.as_bytes()))),
        ),
        ("data", snapshot_to_json(data)),
    ]);
    let snap_tmp = files.snap.with_extension("snap.tmp");
    {
        let mut f = File::create(&snap_tmp)?;
        let mut line = frame.render();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.flush()?;
        f.sync_data()?;
    }
    std::fs::rename(&snap_tmp, &files.snap)?;
    fsync_dir(dir)?;

    // (3) Truncate the active journal to a base marker, atomically.
    let active_tmp = files.active.with_extension("jsonl.tmp");
    {
        let mut f = File::create(&active_tmp)?;
        let line = format!("{{\"op\":\"base\",\"seq\":{}}}\n", data.seq);
        f.write_all(line.as_bytes())?;
        f.flush()?;
        f.sync_data()?;
    }
    std::fs::rename(&active_tmp, &files.active)?;
    fsync_dir(dir)
}

/// Reads the active journal, returning `(base, records)` where `base`
/// is the stream position of the first record.
///
/// # Errors
///
/// Propagates read/parse errors (mid-file corruption stays an error:
/// the registry skips the session, preserving the evidence).
pub fn read_active(path: &Path) -> std::io::Result<(u64, Vec<JournalOp>)> {
    let mut ops = read_journal(path)?;
    let base = match ops.first() {
        Some(JournalOp::Base { seq }) => Some(*seq),
        _ => None,
    };
    match base {
        Some(b) => {
            ops.remove(0);
            Ok((b, ops))
        }
        None => Ok((0, ops)),
    }
}

/// Reads the first `count` archived records (the prefix a full replay
/// needs under an active journal based at `count`).
///
/// # Errors
///
/// Fails when the archive holds fewer than `count` complete records —
/// recovery for this session is then impossible and the caller skips it.
pub fn read_hist_prefix(path: &Path, count: u64) -> std::io::Result<Vec<JournalOp>> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let ops = read_journal(path)?;
    if (ops.len() as u64) < count {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("archive holds {} records, need {count}", ops.len()),
        ));
    }
    Ok(ops.into_iter().take(count as usize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference value for "hello" from the FNV-1a specification.
        assert_eq!(fnv1a(b"hello"), 0xa430d84680aabd0b);
    }

    #[test]
    fn load_rejects_torn_and_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("mlconf_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.snap");
        assert!(load(&path).is_none(), "missing file");
        std::fs::write(&path, "{\"crc\":\"0000").unwrap();
        assert!(load(&path).is_none(), "torn file");
        std::fs::write(&path, "{\"crc\":\"0000000000000000\",\"data\":{}}").unwrap();
        assert!(load(&path).is_none(), "checksum mismatch");
        std::fs::remove_dir_all(&dir).ok();
    }
}
