//! Per-tenant admission control: token-bucket rate limits.
//!
//! Every state-advancing request (`POST /sessions`, `suggest`,
//! `report`) is charged against its tenant's bucket before any work —
//! before a session lock is taken, before the journal is touched. A
//! tenant over its rate gets `429 Too Many Requests` with a computed
//! `Retry-After`, so one chatty tenant cannot starve the rest of the
//! fleet of IO-shard time or journal bandwidth.
//!
//! Buckets live in a small fixed number of lock shards (tenant-name
//! hash → shard) so admission checks on distinct tenants almost never
//! contend; the per-check critical section is a handful of float ops.
//!
//! Time is injected by the caller as a monotonic seconds value, which
//! keeps the arithmetic testable without sleeping.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Lock shards for the tenant → bucket map.
const QUOTA_SHARDS: usize = 16;

/// FNV-1a 64-bit over a tenant name (shard selector).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One tenant's token bucket.
struct Bucket {
    /// Tokens available; one request costs one token.
    tokens: f64,
    /// Monotonic seconds at the last refill.
    refilled_at: f64,
}

/// Token-bucket admission control over all tenants.
pub struct TenantQuotas {
    /// Sustained requests per second granted to each tenant.
    rps: f64,
    /// Bucket capacity (burst allowance).
    burst: f64,
    /// Tenant-name-sharded bucket maps.
    shards: Vec<Mutex<HashMap<String, Bucket>>>,
    /// Epoch for the monotonic clock.
    epoch: Instant,
}

impl TenantQuotas {
    /// A limiter granting each tenant `rps` sustained requests per
    /// second with a burst allowance of `burst` (values `<= 0` fall
    /// back to `max(2 * rps, 1)`). Returns `None` when `rps <= 0`:
    /// admission control disabled.
    pub fn new(rps: f64, burst: f64) -> Option<Self> {
        if !rps.is_finite() || rps <= 0.0 {
            return None;
        }
        let burst = if burst > 0.0 && burst.is_finite() {
            burst
        } else {
            (2.0 * rps).max(1.0)
        };
        Some(TenantQuotas {
            rps,
            burst,
            shards: (0..QUOTA_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            epoch: Instant::now(),
        })
    }

    /// The configured sustained rate.
    pub fn rps(&self) -> f64 {
        self.rps
    }

    /// Charges one request to `tenant` at the current time.
    ///
    /// # Errors
    ///
    /// Returns the whole number of seconds (at least 1) the tenant
    /// should wait before retrying — the `Retry-After` value.
    pub fn admit(&self, tenant: &str) -> Result<(), u64> {
        self.admit_at(tenant, self.epoch.elapsed().as_secs_f64())
    }

    /// [`TenantQuotas::admit`] at an explicit monotonic time (tests).
    ///
    /// # Errors
    ///
    /// Returns the `Retry-After` seconds when the bucket is empty.
    pub fn admit_at(&self, tenant: &str, now_secs: f64) -> Result<(), u64> {
        let shard = (fnv1a(tenant.as_bytes()) % QUOTA_SHARDS as u64) as usize;
        let mut buckets = self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets.entry(tenant.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            refilled_at: now_secs,
        });
        let elapsed = (now_secs - bucket.refilled_at).max(0.0);
        bucket.tokens = (bucket.tokens + elapsed * self.rps).min(self.burst);
        bucket.refilled_at = now_secs;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let wait = (1.0 - bucket.tokens) / self.rps;
            Err((wait.ceil() as u64).max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_below_zero_rps() {
        assert!(TenantQuotas::new(0.0, 0.0).is_none());
        assert!(TenantQuotas::new(-1.0, 0.0).is_none());
        assert!(TenantQuotas::new(f64::NAN, 0.0).is_none());
    }

    #[test]
    fn burst_then_throttle_then_refill() {
        let q = TenantQuotas::new(2.0, 4.0).unwrap();
        // The full burst is admitted...
        for i in 0..4 {
            assert!(q.admit_at("t", 0.0).is_ok(), "burst request {i}");
        }
        // ...then the bucket is dry and Retry-After is computed.
        let wait = q.admit_at("t", 0.0).unwrap_err();
        assert_eq!(wait, 1, "ceil(1 token / 2 rps) = 1s");
        // Refill at 2 tokens/sec: after 1s two more fit.
        assert!(q.admit_at("t", 1.0).is_ok());
        assert!(q.admit_at("t", 1.0).is_ok());
        assert!(q.admit_at("t", 1.0).is_err());
    }

    #[test]
    fn tenants_do_not_share_buckets() {
        let q = TenantQuotas::new(1.0, 1.0).unwrap();
        assert!(q.admit_at("a", 0.0).is_ok());
        assert!(q.admit_at("a", 0.0).is_err());
        assert!(q.admit_at("b", 0.0).is_ok(), "tenant b has its own bucket");
    }

    #[test]
    fn retry_after_is_at_least_one_second() {
        let q = TenantQuotas::new(1000.0, 1.0).unwrap();
        assert!(q.admit_at("t", 0.0).is_ok());
        assert_eq!(q.admit_at("t", 0.0).unwrap_err(), 1);
    }
}
