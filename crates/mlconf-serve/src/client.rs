//! HTTP clients for the ask/tell service.
//!
//! Two layers:
//!
//! - [`request`]: one blocking request per connection, no retries. Used
//!   by tests that want to observe a single server response verbatim.
//! - [`Client`]: the resilient client. Reuses one keep-alive connection
//!   across requests (reconnecting only when the server closes it or a
//!   request fails), retries connect/read failures and overload
//!   responses (429/503) with exponential backoff and seeded jitter —
//!   the same `(seed, op, retry)`-streamed shape as `mlconf-tuners`'
//!   `RetryPolicy` — honors `Retry-After`, re-issues `suggest` safely
//!   (the server is idempotent while a trial is pending), and keys every
//!   `report` so a retried tell after a dropped ACK is deduplicated
//!   server-side instead of double-applied. This is what lets a tuning
//!   loop ride through process-kill chaos.

use crate::json::{self, Json};
use mlconf_util::rng::SplitMix64;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// RNG stream tag for client backoff jitter; distinct from the
/// executor's `0xbac0_ff5e_ed00_0000` so a co-seeded client and
/// executor never draw correlated jitter.
const CLIENT_BACKOFF_STREAM: u64 = 0xbac0_ff5e_c11e_0000;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// A parsed HTTP response, including the one header the client acts on.
struct Response {
    status: u16,
    retry_after_secs: Option<u64>,
    body: String,
}

/// Performs one HTTP request against `addr` (e.g. `"127.0.0.1:8080"`)
/// and returns `(status, body)`. No retries.
///
/// # Errors
///
/// Propagates connection and protocol errors as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let response = request_once(addr, method, path, body, Duration::from_secs(30))?;
    Ok((response.status, response.body))
}

fn request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let body = body.unwrap_or("");
    // One buffered write: `write!` straight to the socket would emit a
    // syscall per format fragment, and a peer that answers after a
    // partial read could RST the tail of the request mid-flight.
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    writer.write_all(request.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let (response, _close) = read_response(&mut reader)?;
    Ok(response)
}

/// Reads one HTTP response off a buffered stream; the second return
/// value is whether the server asked to close the connection.
fn read_response<R: BufRead>(reader: &mut R) -> io::Result<(Response, bool)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut retry_after_secs = None;
    let mut close = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid content-length"))?;
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after_secs = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf)?;
    let body = String::from_utf8(buf).map_err(|_| bad("response body is not UTF-8"))?;
    Ok((
        Response {
            status,
            retry_after_secs,
            body,
        },
        close,
    ))
}

/// A retrying client bound to one server address (re-pointable after a
/// restart via [`Client::set_addr`]).
///
/// Retryable outcomes: any transport error (refused, reset, timeout —
/// the server being dead or mid-restart) and overload answers (429,
/// 503). Everything else is returned to the caller on the first
/// attempt. Backoff before retry `r` of operation `op` is
/// `base * factor^r`, jittered by a draw from the deterministic stream
/// `(seed, op, r)` and capped at `max_backoff`; a server-provided
/// `Retry-After` overrides the computed backoff (still capped).
pub struct Client {
    addr: String,
    seed: u64,
    /// Maximum retries after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in seconds.
    pub backoff_base_secs: f64,
    /// Multiplier applied per additional retry.
    pub backoff_factor: f64,
    /// Jitter fraction in `[0, 1]`: each backoff scales by `1 ± jitter`.
    pub backoff_jitter: f64,
    /// Upper bound on any single sleep, in seconds.
    pub max_backoff_secs: f64,
    /// Per-request socket timeout.
    pub request_timeout: Duration,
    /// Monotonic operation counter; salts the jitter stream so distinct
    /// operations draw distinct backoff sequences.
    ops: u64,
    /// The live keep-alive connection, if the last request left one.
    conn: Option<BufReader<TcpStream>>,
    /// Connections dialed over the client's lifetime (observability:
    /// a healthy loop against a healthy server opens exactly one).
    connections_opened: u64,
}

impl Client {
    /// A client with the default chaos-riding policy: 10 retries,
    /// 50 ms base doubling per retry, ±25% jitter, 2 s cap.
    pub fn new(addr: impl Into<String>, seed: u64) -> Self {
        Client {
            addr: addr.into(),
            seed,
            max_retries: 10,
            backoff_base_secs: 0.05,
            backoff_factor: 2.0,
            backoff_jitter: 0.25,
            max_backoff_secs: 2.0,
            request_timeout: Duration::from_secs(30),
            ops: 0,
            conn: None,
            connections_opened: 0,
        }
    }

    /// The address requests are sent to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Re-points the client, e.g. after a restarted server binds a new
    /// port. Drops any live connection to the old address.
    pub fn set_addr(&mut self, addr: impl Into<String>) {
        self.addr = addr.into();
        self.conn = None;
    }

    /// How many TCP connections this client has dialed. A multi-request
    /// loop against a healthy server stays at 1 (keep-alive reuse);
    /// each reconnect after an error or server-side close adds one.
    pub fn connections_opened(&self) -> u64 {
        self.connections_opened
    }

    /// One request over the persistent connection, dialing a new one if
    /// none is live. Any failure drops the connection, so the caller's
    /// retry dials fresh; a server-side `connection: close` drops it
    /// after the response is read.
    fn attempt(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
        let mut reader = match self.conn.take() {
            Some(conn) => conn,
            None => {
                let stream = TcpStream::connect(&self.addr)?;
                stream.set_read_timeout(Some(self.request_timeout))?;
                stream.set_write_timeout(Some(self.request_timeout))?;
                let _ = stream.set_nodelay(true);
                self.connections_opened += 1;
                BufReader::new(stream)
            }
        };
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        let stream = reader.get_mut();
        stream.write_all(request.as_bytes())?;
        stream.flush()?;
        let (response, close) = read_response(&mut reader)?;
        if !close {
            self.conn = Some(reader);
        }
        Ok(response)
    }

    /// Deterministic jittered backoff before retry `retry` of operation
    /// `op` — the `RetryPolicy::backoff_secs` shape with the client's
    /// own stream tag.
    fn backoff_secs(&self, op: u64, retry: u32) -> f64 {
        let raw = self.backoff_base_secs * self.backoff_factor.powi(retry as i32);
        let raw = raw.min(self.max_backoff_secs);
        if self.backoff_jitter <= 0.0 || raw <= 0.0 {
            return raw;
        }
        let stream = CLIENT_BACKOFF_STREAM ^ (op << 16 | u64::from(retry));
        let mut rng = SplitMix64::new(self.seed.wrapping_mul(0x9e37_79b9).wrapping_add(stream));
        // Uniform in [0, 1) from the top 53 bits.
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (raw * (1.0 + self.backoff_jitter * (2.0 * u - 1.0))).min(self.max_backoff_secs)
    }

    /// Performs `method path` with retries; returns the final
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns the last transport error once retries are exhausted.
    /// Overload statuses that persist past the retry budget are returned
    /// as the final `(status, body)`, not an error.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let op = self.ops;
        self.ops += 1;
        let mut last: Option<io::Result<Response>> = None;
        for retry in 0..=self.max_retries {
            if retry > 0 {
                let secs = match last
                    .as_ref()
                    .and_then(|r| r.as_ref().ok())
                    .and_then(|r| r.retry_after_secs)
                {
                    Some(server_says) => (server_says as f64).min(self.max_backoff_secs),
                    None => self.backoff_secs(op, retry - 1),
                };
                if secs > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(secs));
                }
            }
            match self.attempt(method, path, body) {
                Ok(response) if matches!(response.status, 429 | 503) => {
                    last = Some(Ok(response));
                }
                Ok(response) => return Ok((response.status, response.body)),
                Err(err) => last = Some(Err(err)),
            }
        }
        match last.expect("at least one attempt ran") {
            Ok(response) => Ok((response.status, response.body)),
            Err(err) => Err(err),
        }
    }

    /// `request` expecting a 2xx JSON answer; anything else becomes an
    /// error carrying the status and body.
    fn request_json(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<Json> {
        let (status, body) = self.request(method, path, body)?;
        if !(200..300).contains(&status) {
            return Err(io::Error::other(format!(
                "{method} {path} -> {status}: {body}"
            )));
        }
        json::parse(&body).map_err(|e| bad(&format!("{method} {path}: bad JSON response: {e}")))
    }

    /// Creates a session from a spec body and returns the server's
    /// response (including the assigned `id`).
    ///
    /// # Errors
    ///
    /// Transport errors after retries, or a non-2xx final status.
    pub fn create_session(&mut self, spec: &Json) -> io::Result<Json> {
        self.request_json("POST", "/sessions", Some(&spec.render()))
    }

    /// Asks for the next suggestion. Safe to re-issue blindly: while a
    /// trial is pending the server returns the *same* pending suggestion
    /// without consuming RNG state or journaling, so a retry after a
    /// dropped response cannot skip or duplicate a trial.
    ///
    /// # Errors
    ///
    /// Transport errors after retries, or a non-2xx final status.
    pub fn suggest(&mut self, session_id: &str) -> io::Result<Json> {
        self.request_json("POST", &format!("/sessions/{session_id}/suggest"), None)
    }

    /// Reports an executed trial, stamping the dedup key `t<trial>` so
    /// the server rejects a replayed tell (e.g. a retry after the ACK
    /// was lost to a crash) as a duplicate instead of applying it twice.
    /// A `"duplicate": true` answer is success — the cached response is
    /// returned as-is.
    ///
    /// # Errors
    ///
    /// Transport errors after retries, or a non-2xx final status.
    pub fn report(&mut self, session_id: &str, trial: usize, executed: &Json) -> io::Result<Json> {
        let mut fields = match executed {
            Json::Obj(fields) => fields.clone(),
            _ => return Err(bad("report body must be a JSON object")),
        };
        if !fields.iter().any(|(k, _)| k == "key") {
            fields.push(("key".to_owned(), Json::Str(format!("t{trial}"))));
        }
        let body = Json::Obj(fields).render();
        self.request_json(
            "POST",
            &format!("/sessions/{session_id}/report"),
            Some(&body),
        )
    }

    /// Fetches session status.
    ///
    /// # Errors
    ///
    /// Transport errors after retries, or a non-2xx final status.
    pub fn status(&mut self, session_id: &str) -> io::Result<Json> {
        self.request_json("GET", &format!("/sessions/{session_id}"), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// Reads until the end of the request headers, so stub servers never
    /// answer a half-received request.
    fn read_request(stream: &mut TcpStream) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 256];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let a = Client::new("127.0.0.1:1", 7);
        let b = Client::new("127.0.0.1:1", 7);
        for retry in 0..6 {
            assert_eq!(a.backoff_secs(3, retry), b.backoff_secs(3, retry));
            assert!(a.backoff_secs(3, retry) <= a.max_backoff_secs);
            assert!(a.backoff_secs(3, retry) > 0.0);
        }
        // Different ops and different seeds draw different jitter.
        assert_ne!(a.backoff_secs(0, 0), a.backoff_secs(1, 0));
        let c = Client::new("127.0.0.1:1", 8);
        assert_ne!(a.backoff_secs(0, 0), c.backoff_secs(0, 0));
    }

    #[test]
    fn retries_reconnect_until_a_server_appears() {
        // Bind, learn the port, drop the listener: the first attempts hit
        // connection-refused; a listener resurrected mid-retry then
        // answers. This is the chaos-restart shape in miniature.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);

        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let listener = TcpListener::bind(addr).unwrap();
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream);
            let body = r#"{"ok":true}"#;
            write!(
                stream,
                "HTTP/1.1 200 OK\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .unwrap();
        });

        let mut client = Client::new(addr.to_string(), 11);
        client.backoff_base_secs = 0.02;
        client.max_backoff_secs = 0.1;
        let (status, body) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok":true}"#);
        server.join().unwrap();
    }

    #[test]
    fn overload_answers_are_retried_honoring_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: shed with 429 + sub-second-capped
            // Retry-After. Second: succeed.
            for (i, conn) in listener.incoming().take(2).enumerate() {
                let mut stream = conn.unwrap();
                read_request(&mut stream);
                if i == 0 {
                    let body = r#"{"error":"worker queue is full"}"#;
                    write!(
                        stream,
                        "HTTP/1.1 429 Too Many Requests\r\nretry-after: 1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                        body.len()
                    )
                    .unwrap();
                } else {
                    let body = r#"{"fine":true}"#;
                    write!(
                        stream,
                        "HTTP/1.1 200 OK\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                        body.len()
                    )
                    .unwrap();
                }
            }
        });

        let mut client = Client::new(addr.to_string(), 5);
        client.max_backoff_secs = 0.05; // caps the honored Retry-After
        let start = std::time::Instant::now();
        let (status, body) = client.request("GET", "/x", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"fine":true}"#);
        // It did wait (honored Retry-After), but capped, not the full 1 s.
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(30), "{waited:?}");
        assert!(waited < Duration::from_millis(800), "{waited:?}");
        server.join().unwrap();
    }

    #[test]
    fn keep_alive_connection_is_reused_across_requests() {
        let dir = std::env::temp_dir().join(format!("mlconf_client_ka_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let server = crate::server::Server::bind(
            "127.0.0.1:0",
            crate::server::ServeConfig::new(dir.clone()),
        )
        .unwrap();
        let mut client = Client::new(server.local_addr().to_string(), 9);
        let spec = r#"{"tuner":"random","budget":3,"seed":4,"max_nodes":8}"#;
        let created = client.create_session(&json::parse(spec).unwrap()).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap().to_owned();
        for _ in 0..5 {
            client.status(&id).unwrap();
            let (status, _) = client.request("GET", "/healthz", None).unwrap();
            assert_eq!(status, 200);
        }
        assert_eq!(
            client.connections_opened(),
            1,
            "11 requests over one keep-alive connection"
        );
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_retryable_statuses_return_immediately() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream);
            let body = r#"{"error":"no such session"}"#;
            write!(
                stream,
                "HTTP/1.1 404 Not Found\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .unwrap();
            // A second accept would hang the test if the client retried.
        });
        let mut client = Client::new(addr.to_string(), 3);
        let (status, _) = client.request("GET", "/sessions/nope", None).unwrap();
        assert_eq!(status, 404);
        server.join().unwrap();
    }
}
