//! A minimal blocking HTTP client — one request per connection — used
//! by the integration tests and the CLI's own examples. Not a general
//! client: no keep-alive, no redirects, no chunked responses beyond
//! `Content-Length` framing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Performs one HTTP request against `addr` (e.g. `"127.0.0.1:8080"`)
/// and returns `(status, body)`.
///
/// # Errors
///
/// Propagates connection and protocol errors as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid content-length"))?;
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf)?;
    let body = String::from_utf8(buf).map_err(|_| bad("response body is not UTF-8"))?;
    Ok((status, body))
}
