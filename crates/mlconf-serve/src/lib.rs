#![warn(missing_docs)]
//! `mlconf-serve` — a Vizier-style ask/tell tuning service over a
//! hand-rolled HTTP/1.1 stack, with per-session JSONL journaling and
//! replay-based crash recovery.
//!
//! The tuning state machine itself lives in
//! [`mlconf_tuners::session::AskTellSession`]; this crate hosts many of
//! them behind a network API so an external system (a real training
//! cluster, a load generator, `curl`) can execute the trials:
//!
//! 1. `POST /sessions` with a spec (tuner name, budget, seed, optional
//!    stop conditions and warm-start configs) → a session id.
//! 2. `POST /sessions/{id}/suggest` → the next configuration to run
//!    (or `{"done": true}` when the session is over).
//! 3. Run it, measure it, `POST /sessions/{id}/report` the outcome.
//! 4. Repeat; `GET /sessions/{id}` shows status, incumbent, history.
//!
//! Because every state transition is journaled before it is
//! acknowledged and the state machine is deterministic, killing the
//! server at any point and restarting it over the same `--journal-dir`
//! reconstructs every session bit-identically — including the RNG
//! stream position, so the next suggestion is exactly what it would
//! have been without the crash.
//!
//! The crate is dependency-free beyond the workspace (the HTTP layer
//! sits directly on [`std::net::TcpListener`]; JSON is parsed by
//! [`json`]).

pub mod api;
pub mod client;
pub mod http;
pub mod journal;
pub mod json;
pub mod quota;
pub mod registry;
pub mod server;
pub mod snapshot;

pub use registry::{RegistryConfig, ServeError, ServedSession, SessionRegistry, ShardStats};
pub use server::{ServeConfig, Server, ShutdownHandle};
