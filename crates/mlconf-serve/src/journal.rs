//! Per-session JSONL write-ahead journals.
//!
//! Every state-mutating request (`create`, each RNG-consuming
//! `suggest`, each `report`) appends one JSON line to
//! `<journal-dir>/<session-id>.jsonl` and flushes it **before** the
//! response is acknowledged. Because the session state machine is
//! deterministic in `(spec, told outcomes)`, replaying a journal against
//! a fresh [`AskTellSession`](mlconf_tuners::session::AskTellSession)
//! reconstructs bit-identical state — including the RNG position, so
//! the next suggestion after a crash-restart equals the one an
//! uninterrupted server would have produced.
//!
//! Record shapes (one object per line):
//!
//! ```json
//! {"op":"create","spec":{...}}
//! {"op":"suggest","trial":3}        // ask() produced trial 3
//! {"op":"suggest","done":true}      // ask() declared the session over
//! {"op":"report","executed":{...}}  // tell() committed this result
//! {"op":"report","executed":{...},"key":"t3"}  // with a dedup key
//! {"op":"base","seq":12}            // ops [0,12) live in snapshot/archive
//! ```
//!
//! Idempotent re-suggests (polling an already-pending trial) consume no
//! RNG and are deliberately *not* journaled.
//!
//! A `base` record appears only as the first line of a journal that has
//! been compacted by a snapshot (see [`crate::snapshot`]): it declares
//! that the `seq` preceding operations were rotated into the session's
//! `.hist` archive and are covered by the `.snap` checkpoint, so the
//! records that follow sit at stream positions `seq`, `seq+1`, ….

use crate::json::{obj, parse, Json};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Fsyncs a directory so a just-created / just-renamed entry survives a
/// crash. File-content fsync alone does not persist the *name*: the
/// directory inode holding the entry must itself reach disk.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// One replayable journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// Session creation, with the full spec.
    Create {
        /// The decoded spec JSON (left encoded; the registry decodes).
        spec: Json,
    },
    /// One `ask()` happened (its result is deterministic; replay
    /// re-executes it rather than trusting the recorded value).
    Suggest,
    /// One `tell()` happened with this executed trial.
    Report {
        /// The encoded executed-trial JSON.
        executed: Json,
        /// Client-supplied dedup key, if any; replay rebuilds the
        /// duplicate-rejection state from it.
        key: Option<String>,
    },
    /// Compaction marker: this journal holds only records from stream
    /// position `seq` onward (earlier ones live in the snapshot/archive).
    Base {
        /// Number of operations preceding this journal's first record.
        seq: u64,
    },
}

/// An append-only JSONL journal for one session.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Creates (or truncates) the journal for a brand-new session.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: PathBuf) -> std::io::Result<Self> {
        let file = File::create(&path)?;
        // Persist the directory entry too: without this a crash right
        // after creation can lose the file itself even though its
        // contents were fsynced.
        if let Some(dir) = path.parent() {
            fsync_dir(dir)?;
        }
        Ok(Journal { path, file })
    }

    /// Reopens an existing journal for appending (after replay).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_append(path: PathBuf) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal { path, file })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and forces it to the OS before returning —
    /// the write-ahead guarantee the recovery contract depends on.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the caller must fail the request.
    pub fn append(&mut self, op: &JournalOp) -> std::io::Result<()> {
        let line = match op {
            JournalOp::Create { spec } => {
                obj([("op", Json::Str("create".into())), ("spec", spec.clone())])
            }
            JournalOp::Suggest => obj([("op", Json::Str("suggest".into()))]),
            JournalOp::Report { executed, key } => {
                let mut fields = vec![
                    ("op", Json::Str("report".into())),
                    ("executed", executed.clone()),
                ];
                if let Some(k) = key {
                    fields.push(("key", Json::Str(k.clone())));
                }
                obj(fields)
            }
            JournalOp::Base { seq } => obj([
                ("op", Json::Str("base".into())),
                ("seq", Json::Num(*seq as f64)),
            ]),
        };
        let mut buf = line.render();
        buf.push('\n');
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()
    }
}

/// Reads and decodes every record of a journal file.
///
/// # Errors
///
/// Returns an error for unreadable files, non-JSON lines, or unknown
/// `op` values; a trailing partial line (torn write from a crash
/// mid-append) is tolerated and skipped, since its request was never
/// acknowledged.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<JournalOp>> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let reader = BufReader::new(File::open(path)?);
    let mut ops = Vec::new();
    let mut lines = reader.lines().peekable();
    while let Some(line) = lines.next() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v = match parse(&line) {
            Ok(v) => v,
            // Only the final line may be torn; anything earlier is real
            // corruption.
            Err(_) if lines.peek().is_none() => break,
            Err(e) => return Err(bad(format!("{}: {e}", path.display()))),
        };
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(format!("{}: record without op", path.display())))?;
        ops.push(match op {
            "create" => JournalOp::Create {
                spec: v
                    .get("spec")
                    .cloned()
                    .ok_or_else(|| bad(format!("{}: create without spec", path.display())))?,
            },
            "suggest" => JournalOp::Suggest,
            "report" => JournalOp::Report {
                executed: v
                    .get("executed")
                    .cloned()
                    .ok_or_else(|| bad(format!("{}: report without executed", path.display())))?,
                key: v.get("key").and_then(Json::as_str).map(str::to_owned),
            },
            "base" => JournalOp::Base {
                seq: v
                    .get("seq")
                    .and_then(Json::as_i64)
                    .filter(|&s| s >= 0)
                    .ok_or_else(|| bad(format!("{}: base without seq", path.display())))?
                    as u64,
            },
            other => return Err(bad(format!("{}: unknown op `{other}`", path.display()))),
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlconf_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let spec = parse(r#"{"tuner":"random","budget":3,"seed":1}"#).unwrap();
        let executed = parse(r#"{"outcome":{"tta_secs":1,"cost_usd":1,"throughput":1,"staleness_steps":0,"search_cost_machine_secs":1,"attempts":1}}"#).unwrap();
        let ops = vec![
            JournalOp::Create { spec },
            JournalOp::Suggest,
            JournalOp::Report {
                executed,
                key: Some("t1".into()),
            },
            JournalOp::Suggest,
            JournalOp::Base { seq: 4 },
        ];
        let mut j = Journal::create(path.clone()).unwrap();
        for op in &ops {
            j.append(op).unwrap();
        }
        assert_eq!(read_journal(&path).unwrap(), ops);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let path = tmp("torn.jsonl");
        std::fs::write(&path, "{\"op\":\"suggest\"}\n{\"op\":\"rep").unwrap();
        assert_eq!(read_journal(&path).unwrap(), vec![JournalOp::Suggest]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("corrupt.jsonl");
        std::fs::write(&path, "not json\n{\"op\":\"suggest\"}\n").unwrap();
        assert!(read_journal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_reopens_after_restart() {
        let path = tmp("reopen.jsonl");
        Journal::create(path.clone())
            .unwrap()
            .append(&JournalOp::Suggest)
            .unwrap();
        // "Restart": reopen for append and add another record.
        Journal::open_append(path.clone())
            .unwrap()
            .append(&JournalOp::Suggest)
            .unwrap();
        assert_eq!(
            read_journal(&path).unwrap(),
            vec![JournalOp::Suggest, JournalOp::Suggest]
        );
        std::fs::remove_file(&path).ok();
    }
}
