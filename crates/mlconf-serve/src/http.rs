//! Minimal HTTP/1.1 framing over blocking streams: just enough of the
//! protocol for a JSON API — request-line + headers + `Content-Length`
//! bodies in, status + fixed headers + body out. No chunked encoding,
//! no TLS, no compression; anything outside the subset is answered with
//! a clean 4xx/5xx rather than undefined behavior.

use std::io::{BufRead, BufReader, Read, Write};

/// Limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Maximum bytes for the request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes for the body (`Content-Length` above this is
    /// refused with 413 without reading the body).
    pub max_body_bytes: usize,
}

impl Default for ReadLimits {
    fn default() -> Self {
        ReadLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path with any `?query` stripped.
    pub path: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line
    /// (normal end of a keep-alive connection).
    Closed,
    /// Socket-level failure (including read timeouts).
    Io(std::io::Error),
    /// The request violated the protocol subset; respond with this
    /// status and message, then close.
    Bad {
        /// HTTP status to answer with (400/413/431/501/505).
        status: u16,
        /// Short human-readable reason.
        message: &'static str,
    },
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn bad(status: u16, message: &'static str) -> ReadError {
    ReadError::Bad { status, message }
}

/// Reads one request from a buffered stream.
///
/// # Errors
///
/// [`ReadError::Closed`] at clean EOF, [`ReadError::Bad`] for protocol
/// violations (the caller should answer and close), [`ReadError::Io`]
/// for socket errors/timeouts.
pub fn read_request<S: Read>(
    stream: &mut BufReader<S>,
    limits: &ReadLimits,
) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(stream, limits.max_head_bytes, &mut head_bytes)? {
        None => return Err(ReadError::Closed),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_owned();
    let target = parts
        .next()
        .ok_or_else(|| bad(400, "malformed request line"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad(400, "malformed request line"))?;
    if parts.next().is_some() || method.is_empty() {
        return Err(bad(400, "malformed request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(505, "unsupported HTTP version"));
    }
    let path = target.split('?').next().unwrap_or("").to_owned();
    if !path.starts_with('/') {
        return Err(bad(400, "request target must be an absolute path"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, limits.max_head_bytes, &mut head_bytes)?
            .ok_or_else(|| bad(400, "connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(400, "malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: String::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(bad(501, "transfer-encoding is not supported"));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| bad(400, "invalid content-length"))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(bad(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad(400, "request body is not UTF-8"))?;
    Ok(Request { body, ..request })
}

/// Scans an accumulating read buffer for one complete request frame,
/// without consuming anything — the readiness-driven server calls this
/// on every readable event and feeds complete frames to
/// [`read_request`] for full validation.
///
/// Returns `Ok(Some(len))` when `buf[..len]` holds a complete head plus
/// its declared body, `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// Fails fast — before the peer finishes sending — when the prefix
/// already violates a limit: 431 when no head terminator appears within
/// `max_head_bytes`, 413 when the declared body exceeds
/// `max_body_bytes`. Everything subtler (bad request line, invalid
/// content-length, chunked bodies) is left to [`read_request`], which
/// sees the same bytes and answers precisely.
pub fn frame_len(buf: &[u8], limits: &ReadLimits) -> Result<Option<usize>, ReadError> {
    let mut head_end = None;
    let mut pos = 0;
    while let Some(rel) = buf[pos..].iter().position(|&b| b == b'\n') {
        let line = &buf[pos..pos + rel];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        pos += rel + 1;
        if line.is_empty() {
            head_end = Some(pos);
            break;
        }
    }
    let Some(head_end) = head_end else {
        // No terminator yet; once the buffer reaches the head budget the
        // eventual head can only be over it.
        if buf.len() >= limits.max_head_bytes {
            return Err(bad(431, "request head too large"));
        }
        return Ok(None);
    };
    if head_end > limits.max_head_bytes {
        return Err(bad(431, "request head too large"));
    }
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    // Unparseable declaration: frame the head alone and
                    // let read_request answer 400 off it.
                    Err(_) => break,
                    Ok(n) => {
                        content_length = n;
                        break;
                    }
                }
            }
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(bad(413, "request body too large"));
    }
    let total = head_end + content_length;
    if buf.len() >= total {
        Ok(Some(total))
    } else {
        Ok(None)
    }
}

/// Reads one CRLF- (or LF-) terminated line, enforcing the head budget.
fn read_line<S: Read>(
    stream: &mut BufReader<S>,
    max_head: usize,
    consumed: &mut usize,
) -> Result<Option<String>, ReadError> {
    let mut line = Vec::new();
    let remaining = max_head.saturating_sub(*consumed);
    let mut limited = stream.by_ref().take(remaining as u64 + 1);
    let n = limited.read_until(b'\n', &mut line)?;
    *consumed += n;
    if n == 0 {
        return Ok(None);
    }
    if *consumed > max_head {
        return Err(bad(431, "request head too large"));
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
    } else {
        // EOF before the terminator.
        return Err(bad(400, "truncated request"));
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| bad(400, "request head is not UTF-8"))
}

/// The reason phrase for the statuses this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one JSON response (headers + body) and flushes.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    write_response_with_retry(stream, status, body, close, None)
}

/// [`write_response`] plus an optional `Retry-After` header (seconds) —
/// used by the load-shedding paths (429/503) so well-behaved clients
/// know when to come back instead of hammering a saturated server.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_response_with_retry<W: Write>(
    stream: &mut W,
    status: u16,
    body: &str,
    close: bool,
    retry_after_secs: Option<u64>,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let retry_after = retry_after_secs.map_or(String::new(), |s| format!("retry-after: {s}\r\n"));
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n{retry_after}\r\n{body}",
        reason(status),
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(input: &str) -> Result<Request, ReadError> {
        read_request(
            &mut BufReader::new(input.as_bytes()),
            &ReadLimits::default(),
        )
    }

    #[test]
    fn parses_request_with_body() {
        let r = read("POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/sessions");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, "{\"a\":1}");
        assert!(!r.wants_close());
    }

    #[test]
    fn strips_query_and_honors_connection_close() {
        let r = read("GET /sessions/s1?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(r.path, "/sessions/s1");
        assert!(r.wants_close());
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(read(""), Err(ReadError::Closed)));
    }

    #[test]
    fn rejects_protocol_violations() {
        let cases = [
            ("BROKEN\r\n\r\n", 400),
            ("GET / HTTP/2.0\r\n\r\n", 505),
            ("GET noslash HTTP/1.1\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nbadheader\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            ("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
        ];
        for (input, expect) in cases {
            match read(input) {
                Err(ReadError::Bad { status, .. }) => assert_eq!(status, expect, "{input:?}"),
                other => panic!("{input:?} should be Bad, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_and_head_are_refused() {
        let limits = ReadLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let too_big_body = "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        match read_request(&mut BufReader::new(too_big_body.as_bytes()), &limits) {
            Err(ReadError::Bad { status: 413, .. }) => {}
            other => panic!("expected 413, got {other:?}"),
        }
        let huge_head = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(100));
        match read_request(&mut BufReader::new(huge_head.as_bytes()), &limits) {
            Err(ReadError::Bad { status: 431, .. }) => {}
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn frame_detection_is_incremental() {
        let limits = ReadLimits::default();
        let full = b"POST /s HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        // Every proper prefix is incomplete; the full buffer frames.
        for cut in 0..full.len() {
            assert_eq!(frame_len(&full[..cut], &limits).unwrap(), None, "cut {cut}");
        }
        assert_eq!(frame_len(full, &limits).unwrap(), Some(full.len()));
        // A pipelined second request is not part of the frame.
        let mut pipelined = full.to_vec();
        pipelined.extend_from_slice(b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(frame_len(&pipelined, &limits).unwrap(), Some(full.len()));
        // No body, bare-LF terminators.
        assert_eq!(
            frame_len(b"GET / HTTP/1.1\nHost: x\n\n", &limits).unwrap(),
            Some(24)
        );
    }

    #[test]
    fn frame_detection_fails_fast_on_limits() {
        let limits = ReadLimits {
            max_head_bytes: 32,
            max_body_bytes: 8,
        };
        // Head budget exhausted before any terminator: 431 now, not
        // after the peer trickles in the rest.
        let endless = vec![b'y'; 32];
        match frame_len(&endless, &limits) {
            Err(ReadError::Bad { status: 431, .. }) => {}
            other => panic!("expected 431, got {other:?}"),
        }
        // Declared body over budget: 413 from the head alone (the head
        // itself fits its budget, so only the body limit trips).
        let limits = ReadLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let big = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        match frame_len(big, &limits) {
            Err(ReadError::Bad { status: 413, .. }) => {}
            other => panic!("expected 413, got {other:?}"),
        }
        // Invalid content-length: framed head-only; read_request answers.
        let bad_cl = b"POST / HTTP/1.1\r\nContent-Length: no\r\n\r\n";
        let limits = ReadLimits::default();
        assert_eq!(frame_len(bad_cl, &limits).unwrap(), Some(bad_cl.len()));
        match read_request(&mut BufReader::new(&bad_cl[..]), &limits) {
            Err(ReadError::Bad { status: 400, .. }) => {}
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn response_has_framing_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
