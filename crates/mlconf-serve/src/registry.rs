//! The multi-tenant session registry: id-keyed ask/tell sessions,
//! sharded by session-id hash, each with its own journal.
//!
//! # Sharding
//!
//! The registry is split into N shards (`fnv1a(id) % N`). Each shard
//! owns its own lookup map behind its own mutex **and its own journal
//! subdirectory** (`<journal-dir>/shard-<k>/`), so suggest/report
//! traffic on sessions in different shards shares no lock and no
//! directory inode. Within a shard the map mutex is held only to look
//! up / insert / remove `Arc` handles (and, rarely, to revive a parked
//! session); each session still has its own mutex guarding the tuner +
//! state machine + journal. No code path holds a session lock and a
//! shard lock at once, so deadlock is impossible.
//!
//! # Memory bound: parked sessions and idle eviction
//!
//! A session is either *live* (tuner + history resident in memory) or
//! *parked* (only its journal/snapshot files on disk). Restart parks
//! everything — startup is O(#sessions) in directory entries, not in
//! journal bytes — and the first touch of a parked session revives it
//! by the usual recovery path (snapshot + tail, else full replay),
//! which is bit-identical to never having been parked. When
//! `max_sessions > 0`, exceeding the per-shard live bound evicts the
//! least-recently-touched idle session back to parked; because every
//! acknowledged operation is already fsynced to the journal, eviction
//! writes nothing and can never lose state.
//!
//! Shard assignment is a pure function of the id, so a restart with a
//! different shard count simply migrates each session's files to the
//! directory the new hash assigns (including journals from the
//! pre-sharding flat layout).
//!
//! Recovery is two-tier. Every state transition is journaled before it
//! is acknowledged, so a full replay always reconstructs the session
//! bit-identically. When snapshots are enabled (`snapshot_every > 0`)
//! the registry additionally checkpoints each session every N journaled
//! operations (see [`crate::snapshot`]); restart then restores the
//! checkpoint and replays only the records that follow it — O(N)
//! instead of O(run length) — falling back to full replay whenever the
//! checkpoint is missing, torn, or rejected.

use crate::api::{
    config_to_json, executed_from_json, executed_to_json, outcome_to_json, pending_to_json,
    spec_from_json, spec_to_json, tagged_num, ApiError, SessionSpec,
};
use crate::journal::{Journal, JournalOp};
use crate::json::{obj, Json};
use crate::snapshot::{self, SessionFiles, SnapshotData};
use mlconf_tuners::drift::{DriftConfig, DriftCtl};
use mlconf_tuners::factory::build_tuner;
use mlconf_tuners::session::{Ask, AskTellSession};
use mlconf_tuners::tuner::Tuner;
use mlconf_workloads::tunespace::default_config;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Locks a mutex, recovering from poisoning. A request that panicked
/// mid-handler must cost only its own connection: the journal (not the
/// in-memory value) is the durable source of truth, and every journaled
/// operation is applied append-first, so the guarded state is consistent
/// at operation granularity even after a panic.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A request-level failure: HTTP status plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Human-readable explanation (sent as `{"error": ...}`).
    pub message: String,
    /// `Retry-After` seconds the response should carry (429 quota
    /// rejections compute one from the tenant's refill rate).
    pub retry_after: Option<u64>,
}

impl ServeError {
    /// 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError {
            status: 400,
            message: message.into(),
            retry_after: None,
        }
    }

    /// 404 Not Found.
    pub fn not_found(message: impl Into<String>) -> Self {
        ServeError {
            status: 404,
            message: message.into(),
            retry_after: None,
        }
    }

    /// 409 Conflict (protocol misuse against session state).
    pub fn conflict(message: impl Into<String>) -> Self {
        ServeError {
            status: 409,
            message: message.into(),
            retry_after: None,
        }
    }

    /// 429 Too Many Requests (tenant over quota), with the seconds the
    /// client should wait before retrying.
    pub fn too_many_requests(message: impl Into<String>, retry_after: u64) -> Self {
        ServeError {
            status: 429,
            message: message.into(),
            retry_after: Some(retry_after),
        }
    }

    /// 500 Internal Server Error (journal write failures).
    pub fn internal(message: impl Into<String>) -> Self {
        ServeError {
            status: 500,
            message: message.into(),
            retry_after: None,
        }
    }
}

impl From<ApiError> for ServeError {
    fn from(e: ApiError) -> Self {
        ServeError::bad_request(e.0)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.status, self.message)
    }
}

impl std::error::Error for ServeError {}

/// One hosted tuning session: spec, tuner, state machine, journal.
pub struct ServedSession {
    id: String,
    spec: SessionSpec,
    tuner: Box<dyn Tuner + Send>,
    core: AskTellSession<'static>,
    journal: Journal,
    files: SessionFiles,
    /// Total journaled operations (create included): the session state
    /// equals replaying stream positions `[0, seq)`.
    seq: u64,
    /// Operations journaled since the last installed checkpoint.
    ops_since_snapshot: u64,
    /// Checkpoint every N operations; 0 disables snapshots.
    snapshot_every: u64,
    /// The last applied report's dedup key and exact response, for
    /// duplicate rejection when a client retries after a dropped ACK.
    last_report: Option<(String, Json)>,
}

/// Builds the tuner + state machine a spec describes, from scratch.
fn machinery(spec: &SessionSpec) -> (Box<dyn Tuner + Send>, AskTellSession<'static>) {
    let tuner = build_tuner(
        &spec.tuner,
        spec.space(),
        spec.budget,
        spec.seed,
        Some(default_config(spec.max_nodes)),
    )
    .expect("spec validation checked the tuner name");
    let core = AskTellSession::new(spec.budget, spec.seed)
        .stop_conditions(spec.conditions.iter().copied())
        .warm_start(spec.warm_start.iter().cloned())
        .drift_ctl(DriftCtl::new(
            spec.retune_policy,
            DriftConfig::default(),
            spec.space(),
            spec.seed,
        ));
    (tuner, core)
}

impl ServedSession {
    /// The session id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The creating spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Read access to the state machine (tests and status endpoints).
    pub fn core(&self) -> &AskTellSession<'static> {
        &self.core
    }

    /// Handles `POST /sessions/{id}/suggest`.
    ///
    /// Idempotent while a trial is outstanding: re-suggesting returns
    /// the same pending trial without touching the RNG or the journal.
    /// A state-advancing ask is journaled before it executes, so a crash
    /// between journal and response replays to the same state the
    /// client would have seen.
    ///
    /// # Errors
    ///
    /// Returns 500 if the journal write fails (the ask does not happen).
    pub fn suggest(&mut self) -> Result<Json, ServeError> {
        if let Some(p) = self.core.pending() {
            let epoch = self.core.wall_secs();
            return Ok(with_epoch(pending_to_json(p), epoch));
        }
        self.journal
            .append(&JournalOp::Suggest)
            .map_err(|e| ServeError::internal(format!("journal write failed: {e}")))?;
        let response = match self
            .core
            .ask(self.tuner.as_mut())
            .expect("no pending trial outstanding")
        {
            Ask::Trial(p) => with_epoch(pending_to_json(&p), self.core.wall_secs()),
            Ask::Finished { reason } => obj([
                ("done", Json::Bool(true)),
                (
                    "reason",
                    reason.map_or(Json::Null, |r| Json::Str(r.name().into())),
                ),
            ]),
        };
        self.after_op();
        Ok(response)
    }

    /// Handles `POST /sessions/{id}/report`.
    ///
    /// A body may carry a client-chosen `"key"` (any string). If the key
    /// equals the *last applied* report's key, the report is recognized
    /// as a retry after a dropped ACK: the original response is returned
    /// with `"duplicate": true` appended, and the outcome is **not**
    /// applied a second time. The dedup check runs before the
    /// pending-trial check — after a dropped ACK no trial is pending,
    /// and the retry must get its answer, not a 409.
    ///
    /// # Errors
    ///
    /// Returns 409 when no trial is outstanding, 400 for undecodable
    /// bodies (decoded by the caller), 500 if the journal write fails.
    pub fn report(&mut self, body: &Json) -> Result<Json, ServeError> {
        let key = body.get("key").and_then(Json::as_str).map(str::to_owned);
        if let (Some(k), Some((last_key, cached))) = (&key, &self.last_report) {
            if k == last_key {
                let mut fields = match cached.clone() {
                    Json::Obj(fields) => fields,
                    other => vec![("response".to_owned(), other)],
                };
                fields.push(("duplicate".to_owned(), Json::Bool(true)));
                return Ok(Json::Obj(fields));
            }
        }
        let executed = executed_from_json(body)?;
        if self.core.pending().is_none() {
            return Err(ServeError::conflict(
                "no suggested trial is awaiting a report",
            ));
        }
        self.journal
            .append(&JournalOp::Report {
                executed: executed_to_json(&executed),
                key: key.clone(),
            })
            .map_err(|e| ServeError::internal(format!("journal write failed: {e}")))?;
        let trial = self
            .core
            .tell(self.tuner.as_mut(), executed)
            .expect("pending trial checked above");
        let response = report_response(&self.core, trial);
        self.last_report = key.map(|k| (k, response.clone()));
        self.after_op();
        Ok(response)
    }

    /// Bookkeeping after a successful journal-append + state advance:
    /// bumps the stream position and installs a checkpoint every
    /// `snapshot_every` operations. Checkpoint failures are logged and
    /// swallowed — a missed snapshot only costs restart speed.
    fn after_op(&mut self) {
        self.seq += 1;
        self.ops_since_snapshot += 1;
        if self.snapshot_every > 0 && self.ops_since_snapshot >= self.snapshot_every {
            if let Err(e) = self.snapshot_now() {
                eprintln!(
                    "mlconf-serve: checkpoint of session {} failed (serving continues): {e}",
                    self.id
                );
            }
        }
    }

    /// Checkpoints this session immediately: archives the active
    /// journal, installs a `.snap`, truncates the journal to a `base`
    /// marker. Returns `Ok(false)` when the tuner does not support
    /// checkpointing (the session keeps full-replay recovery).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the active journal remains authoritative
    /// so serving safely continues.
    pub fn snapshot_now(&mut self) -> std::io::Result<bool> {
        let Some(tuner_state) = self.tuner.checkpoint() else {
            return Ok(false);
        };
        let data = SnapshotData {
            seq: self.seq,
            spec: self.spec.clone(),
            session: self.core.resume_state(),
            tuner: tuner_state,
            last_report: self.last_report.clone(),
        };
        snapshot::install(&self.files, &data)?;
        // `install` replaced the active journal file; the old handle
        // points at the renamed-over inode, so reopen before appending.
        self.journal = Journal::open_append(self.files.active.clone())?;
        self.ops_since_snapshot = 0;
        Ok(true)
    }

    /// Handles `GET /sessions/{id}`: status, incumbent, full history.
    pub fn status_json(&self) -> Json {
        let history = self
            .core
            .history()
            .trials()
            .iter()
            .map(|t| {
                obj([
                    ("trial", Json::Num(t.index as f64)),
                    ("config", config_to_json(&t.config)),
                    ("outcome", outcome_to_json(&t.outcome)),
                ])
            })
            .collect();
        let best = self.core.history().best().map_or(Json::Null, |b| {
            obj([
                (
                    "objective",
                    b.outcome.objective.map_or(Json::Null, tagged_num),
                ),
                ("trial", Json::Num(b.index as f64)),
                ("config", config_to_json(&b.config)),
            ])
        });
        obj([
            ("id", Json::Str(self.id.clone())),
            ("spec", spec_to_json(&self.spec)),
            ("trials", Json::Num(self.core.history().len() as f64)),
            ("finished", Json::Bool(self.core.is_finished())),
            (
                "stop_reason",
                self.core
                    .stop_reason()
                    .map_or(Json::Null, |r| Json::Str(r.name().into())),
            ),
            (
                "pending",
                self.core.pending().map_or(Json::Null, pending_to_json),
            ),
            (
                "scenario",
                self.spec
                    .scenario
                    .as_ref()
                    .map_or(Json::Null, |s| Json::Str(s.clone())),
            ),
            (
                "drift_events",
                Json::Num(self.core.stats().drift_events as f64),
            ),
            (
                "retune_count",
                Json::Num(self.core.stats().retune_count as f64),
            ),
            ("wall_secs", tagged_num(self.core.wall_secs())),
            ("best", best),
            ("history", Json::Arr(history)),
        ])
    }
}

fn best_objective(core: &AskTellSession<'_>) -> Option<f64> {
    core.history().best().and_then(|b| b.outcome.objective)
}

/// Appends the session's virtual wall clock to a pending-trial payload so
/// external executors can evaluate against the scenario state at the
/// epoch the trial was issued, matching what an in-process `drive()`
/// would pass to the executor.
fn with_epoch(pending: Json, epoch_secs: f64) -> Json {
    match pending {
        Json::Obj(mut fields) => {
            fields.push(("epoch_secs".to_owned(), tagged_num(epoch_secs)));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// The `POST /sessions/{id}/report` success payload. Factored out so
/// journal replay can rebuild the exact response a keyed report was
/// acknowledged with (the duplicate-rejection cache must survive
/// restarts bit-identically).
fn report_response(core: &AskTellSession<'_>, trial: usize) -> Json {
    obj([
        ("trial", Json::Num(trial as f64)),
        ("trials", Json::Num(core.history().len() as f64)),
        (
            "best_objective",
            best_objective(core).map_or(Json::Null, tagged_num),
        ),
        ("finished", Json::Bool(core.is_finished())),
    ])
}

/// Re-executes a slice of journaled operations against a live tuner +
/// state machine, mirroring exactly what the serving path did:
/// `suggest` re-asks (consuming the same RNG draws), `report` re-tells,
/// and keyed reports rebuild the duplicate-rejection cache.
fn apply_ops(
    tuner: &mut dyn Tuner,
    core: &mut AskTellSession<'static>,
    last_report: &mut Option<(String, Json)>,
    ops: &[JournalOp],
) -> Result<(), ServeError> {
    let desync = |e: &dyn std::fmt::Display| {
        ServeError::internal(format!("journal replay desynchronized: {e}"))
    };
    for op in ops {
        match op {
            JournalOp::Create { .. } => {
                return Err(ServeError::internal("duplicate create record"));
            }
            JournalOp::Base { .. } => {
                return Err(ServeError::internal("base record not at journal head"));
            }
            JournalOp::Suggest => {
                core.ask(tuner).map_err(|e| desync(&e))?;
            }
            JournalOp::Report { executed, key } => {
                let executed = executed_from_json(executed)?;
                let trial = core.tell(tuner, executed).map_err(|e| desync(&e))?;
                *last_report = key
                    .as_ref()
                    .map(|k| (k.clone(), report_response(core, trial)));
            }
        }
    }
    Ok(())
}

/// Restores a session from a checkpoint and replays the journal tail
/// that follows it. Any failure (tuner refuses the state, mismatched
/// stop conditions, tail desync) is returned so the caller can fall
/// back to full replay.
#[allow(clippy::type_complexity)]
fn try_snapshot_restore(
    snap: &SnapshotData,
    tail: &[JournalOp],
) -> Result<
    (
        Box<dyn Tuner + Send>,
        AskTellSession<'static>,
        Option<(String, Json)>,
    ),
    ServeError,
> {
    let (mut tuner, mut core) = machinery(&snap.spec);
    tuner
        .restore(&snap.tuner, &snap.session.history)
        .map_err(|e| ServeError::internal(format!("tuner restore failed: {e}")))?;
    core.restore_resume_state(snap.session.clone())
        .map_err(|e| ServeError::internal(format!("session restore failed: {e}")))?;
    let mut last_report = snap.last_report.clone();
    apply_ops(tuner.as_mut(), &mut core, &mut last_report, tail)?;
    Ok((tuner, core, last_report))
}

/// Tunables for opening a [`SessionRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Checkpoint each session every N journaled operations; 0 disables
    /// snapshots (pure full-replay recovery).
    pub snapshot_every: u64,
    /// Number of registry shards (lock + journal-directory granularity).
    pub shards: usize,
    /// Live in-memory session bound across the whole registry; 0 means
    /// unbounded. Sessions over the bound are parked (evicted to disk)
    /// least-recently-touched first.
    pub max_sessions: usize,
}

impl RegistryConfig {
    /// Snapshots-off, 4-shard, unbounded defaults.
    pub fn new(snapshot_every: u64) -> Self {
        RegistryConfig {
            snapshot_every,
            shards: 4,
            max_sessions: 0,
        }
    }
}

/// FNV-1a 64-bit over a session id (shard selector — stable across
/// restarts and shard-count changes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One live session plus its recency stamp.
struct LiveEntry {
    session: Arc<Mutex<ServedSession>>,
    /// Logical touch clock value at the last access (LRU eviction key).
    last_touch: u64,
}

/// One shard's lookup state.
struct ShardState {
    /// Sessions resident in memory.
    live: HashMap<String, LiveEntry>,
    /// Sessions that exist only as journal/snapshot files in this
    /// shard's directory (restart-parked or idle-evicted).
    parked: std::collections::BTreeSet<String>,
}

/// One registry shard: its journal directory and lookup map.
struct Shard {
    dir: PathBuf,
    inner: Mutex<ShardState>,
}

/// A point-in-time view of one shard, for the readiness probe.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub index: usize,
    /// The shard's journal directory.
    pub dir: PathBuf,
    /// Sessions resident in memory.
    pub live: usize,
    /// Sessions parked on disk.
    pub parked: usize,
}

/// Id-keyed, shard-partitioned collection of served sessions with
/// journal-backed recovery and idle eviction.
pub struct SessionRegistry {
    snapshot_every: u64,
    /// Per-shard live bound derived from `RegistryConfig::max_sessions`.
    max_live_per_shard: usize,
    shards: Vec<Shard>,
    next_id: std::sync::atomic::AtomicU64,
    touch_clock: std::sync::atomic::AtomicU64,
}

impl SessionRegistry {
    /// Opens a registry over `journal_dir`, discovering every session
    /// found there. Sessions are *parked*, not replayed: the first
    /// touch revives each one (snapshot-first, full replay as
    /// fallback), so startup cost is directory-entry scale regardless
    /// of journal lengths. Files from a previous shard count — or the
    /// pre-sharding flat layout — are migrated into the directory the
    /// current hash assigns.
    ///
    /// # Errors
    ///
    /// Propagates failure to create, scan, or migrate the directories
    /// themselves.
    pub fn open(journal_dir: &Path, config: RegistryConfig) -> std::io::Result<Self> {
        let nshards = config.shards.max(1);
        std::fs::create_dir_all(journal_dir)?;
        let mut shards: Vec<Shard> = (0..nshards)
            .map(|k| Shard {
                dir: journal_dir.join(format!("shard-{k}")),
                inner: Mutex::new(ShardState {
                    live: HashMap::new(),
                    parked: std::collections::BTreeSet::new(),
                }),
            })
            .collect();
        for shard in &shards {
            std::fs::create_dir_all(&shard.dir)?;
        }

        // Discover session journals wherever a previous layout left
        // them: the flat (pre-sharding) root and every shard-* dir,
        // current shard count or not.
        let mut scan_dirs: Vec<PathBuf> = vec![journal_dir.to_owned()];
        for entry in std::fs::read_dir(journal_dir)? {
            let p = entry?.path();
            let shard_named = p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-"));
            if p.is_dir() && shard_named {
                scan_dirs.push(p);
            }
        }
        let mut next_id = 1;
        for dir in scan_dirs {
            let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
                .collect();
            paths.sort();
            for path in paths {
                let id = match path.file_stem().and_then(|s| s.to_str()) {
                    Some(stem) => stem.to_owned(),
                    None => continue,
                };
                // Reserve the id whether or not the session ever
                // revives, so a new session never truncates an existing
                // (possibly corrupt, possibly evidence-bearing) journal.
                if let Some(n) = id.strip_prefix('s').and_then(|n| n.parse::<u64>().ok()) {
                    next_id = next_id.max(n + 1);
                }
                let k = (fnv1a(id.as_bytes()) % nshards as u64) as usize;
                migrate_session_files(&id, &dir, &shards[k].dir)?;
                shards[k]
                    .inner
                    .get_mut()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .parked
                    .insert(id);
            }
        }
        let max_live_per_shard = if config.max_sessions == 0 {
            usize::MAX
        } else {
            config.max_sessions.div_ceil(nshards).max(1)
        };
        Ok(SessionRegistry {
            snapshot_every: config.snapshot_every,
            max_live_per_shard,
            shards,
            next_id: std::sync::atomic::AtomicU64::new(next_id),
            touch_clock: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The shard `id` hashes to.
    fn shard_of(&self, id: &str) -> &Shard {
        &self.shards[(fnv1a(id.as_bytes()) % self.shards.len() as u64) as usize]
    }

    /// The on-disk files backing session `id` (under its shard's dir).
    pub fn files_for(&self, id: &str) -> SessionFiles {
        SessionFiles::new(&self.shard_of(id).dir, id)
    }

    /// Per-shard live/parked counts and directories (readiness probe).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let state = lock_recover(&shard.inner);
                ShardStats {
                    index,
                    dir: shard.dir.clone(),
                    live: state.live.len(),
                    parked: state.parked.len(),
                }
            })
            .collect()
    }

    /// Parks least-recently-touched idle sessions until the shard is
    /// back under its live bound. A session whose `Arc` is held by an
    /// in-flight request is never parked (a parked id must have exactly
    /// one journal writer — the one revival creates), so the bound is
    /// soft under concurrency.
    fn evict_over_bound(&self, state: &mut ShardState) {
        while state.live.len() > self.max_live_per_shard {
            let victim = state
                .live
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.session) == 1)
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(id, _)| id.clone());
            let Some(id) = victim else { return };
            state.live.remove(&id);
            state.parked.insert(id);
        }
    }

    /// Rebuilds one session. Preferred path: restore the `.snap`
    /// checkpoint and replay only the active journal's tail — bounded
    /// by the snapshot interval. Fallback (missing/torn/rejected
    /// snapshot): replay the full operation stream, stitching the
    /// `.hist` archive prefix under the active journal when the journal
    /// has been compacted. Determinism makes either path bit-identical
    /// to the pre-crash state.
    fn recover(
        shard_dir: &Path,
        id: &str,
        snapshot_every: u64,
    ) -> Result<ServedSession, ServeError> {
        let files = SessionFiles::new(shard_dir, id);
        let path = files.active.clone();
        let (base, ops) = snapshot::read_active(&path)
            .map_err(|e| ServeError::internal(format!("unreadable journal: {e}")))?;
        let seq = base + ops.len() as u64;

        if let Some(snap) = snapshot::load(&files.snap) {
            if snap.seq >= base && snap.seq <= seq {
                let tail = &ops[(snap.seq - base) as usize..];
                match try_snapshot_restore(&snap, tail) {
                    Ok((tuner, core, last_report)) => {
                        let journal = Journal::open_append(path.to_owned()).map_err(|e| {
                            ServeError::internal(format!("cannot reopen journal: {e}"))
                        })?;
                        return Ok(ServedSession {
                            id: id.to_owned(),
                            spec: snap.spec,
                            tuner,
                            core,
                            journal,
                            files,
                            seq,
                            ops_since_snapshot: seq - snap.seq,
                            snapshot_every,
                            last_report,
                        });
                    }
                    Err(e) => eprintln!(
                        "mlconf-serve: checkpoint restore of session {id} failed \
                         ({e}); falling back to full replay"
                    ),
                }
            } else {
                eprintln!(
                    "mlconf-serve: checkpoint of session {id} covers seq {} outside \
                     journal range [{base}, {seq}]; falling back to full replay",
                    snap.seq
                );
            }
        }

        // Full replay: archived prefix (stream positions [0, base)) then
        // the active journal.
        let mut stream = snapshot::read_hist_prefix(&files.hist, base)
            .map_err(|e| ServeError::internal(format!("unreadable archive: {e}")))?;
        stream.extend(ops);
        let mut stream = stream.into_iter();
        let Some(JournalOp::Create { spec }) = stream.next() else {
            return Err(ServeError::internal(
                "journal does not begin with a create record",
            ));
        };
        let spec = spec_from_json(&spec)?;
        let (mut tuner, mut core) = machinery(&spec);
        let mut last_report = None;
        let rest: Vec<JournalOp> = stream.collect();
        apply_ops(tuner.as_mut(), &mut core, &mut last_report, &rest)?;
        let journal = Journal::open_append(path.to_owned())
            .map_err(|e| ServeError::internal(format!("cannot reopen journal: {e}")))?;
        Ok(ServedSession {
            id: id.to_owned(),
            spec,
            tuner,
            core,
            journal,
            files,
            seq,
            // A full replay means the checkpoint (if any) was unusable;
            // the next journaled operation installs a fresh one.
            ops_since_snapshot: snapshot_every,
            snapshot_every,
            last_report,
        })
    }

    /// Advances the logical recency clock and returns the new stamp.
    fn touch(&self) -> u64 {
        self.touch_clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Handles `POST /sessions`: validates the spec, journals the
    /// creation, and registers the new session in its shard.
    ///
    /// # Errors
    ///
    /// Returns 400 for invalid specs, 500 for journal I/O failures.
    pub fn create(&self, body: &Json) -> Result<Json, ServeError> {
        let spec = spec_from_json(body)?;
        let (tuner, core) = machinery(&spec);
        // Atomic id allocation keeps ids unique without any global lock;
        // a failed journal create burns the id, which is harmless.
        let id = format!(
            "s{}",
            self.next_id
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        let shard = self.shard_of(&id);
        let files = SessionFiles::new(&shard.dir, &id);
        let mut journal = Journal::create(files.active.clone())
            .map_err(|e| ServeError::internal(format!("cannot create journal: {e}")))?;
        journal
            .append(&JournalOp::Create {
                spec: spec_to_json(&spec),
            })
            .map_err(|e| ServeError::internal(format!("journal write failed: {e}")))?;
        let session = ServedSession {
            id: id.clone(),
            spec,
            tuner,
            core,
            journal,
            files,
            seq: 1,
            ops_since_snapshot: 0,
            snapshot_every: self.snapshot_every,
            last_report: None,
        };
        // The local clone keeps the new session's strong count above 1
        // through the eviction sweep: a session someone is actively
        // creating is in flight, not an eviction candidate.
        let handle = Arc::new(Mutex::new(session));
        let mut state = lock_recover(&shard.inner);
        state.live.insert(
            id.clone(),
            LiveEntry {
                session: Arc::clone(&handle),
                last_touch: self.touch(),
            },
        );
        self.evict_over_bound(&mut state);
        Ok(obj([("id", Json::Str(id))]))
    }

    /// Looks up a session handle by id, reviving it from its journal if
    /// it is parked. Revival runs under the shard lock — that lock is
    /// what guarantees a parked id never gains two journal writers.
    pub fn get(&self, id: &str) -> Option<Arc<Mutex<ServedSession>>> {
        let shard = self.shard_of(id);
        let mut state = lock_recover(&shard.inner);
        let stamp = self.touch();
        if let Some(entry) = state.live.get_mut(id) {
            entry.last_touch = stamp;
            return Some(Arc::clone(&entry.session));
        }
        if !state.parked.contains(id) {
            return None;
        }
        match Self::recover(&shard.dir, id, self.snapshot_every) {
            Ok(session) => {
                state.parked.remove(id);
                let session = Arc::new(Mutex::new(session));
                state.live.insert(
                    id.to_owned(),
                    LiveEntry {
                        session: Arc::clone(&session),
                        last_touch: stamp,
                    },
                );
                self.evict_over_bound(&mut state);
                Some(session)
            }
            Err(e) => {
                // The id stays parked (and reserved): the journal is
                // preserved as evidence and a later touch may succeed
                // (e.g. after an operator repairs the file).
                eprintln!("mlconf-serve: revival of session {id} failed (stays parked): {e}");
                None
            }
        }
    }

    /// Handles `DELETE /sessions/{id}`: unregisters the session (live
    /// or parked) and removes every on-disk trace — journal,
    /// checkpoint, archive, and any temp files a crashed checkpoint
    /// left behind. Returns `false` for unknown ids.
    pub fn delete(&self, id: &str) -> bool {
        let shard = self.shard_of(id);
        let mut state = lock_recover(&shard.inner);
        let was_live = state.live.remove(id).is_some();
        let was_parked = state.parked.remove(id);
        if !(was_live || was_parked) {
            return false;
        }
        SessionFiles::new(&shard.dir, id).remove_all();
        true
    }

    /// All session ids (live and parked), sorted.
    pub fn list(&self) -> Vec<String> {
        let mut ids: Vec<String> = Vec::new();
        for shard in &self.shards {
            let state = lock_recover(&shard.inner);
            ids.extend(state.live.keys().cloned());
            ids.extend(state.parked.iter().cloned());
        }
        ids.sort();
        ids
    }
}

/// Moves one session's files from wherever a previous layout left them
/// to the directory the current shard hash assigns. The checkpoint and
/// archive move first and the journal last: the journal's location is
/// the commit point discovery keys on, so a crash mid-migration simply
/// re-runs it (at worst orphaning a stale checkpoint, which recovery
/// falls past via full replay).
fn migrate_session_files(id: &str, from: &Path, to: &Path) -> std::io::Result<()> {
    if from == to {
        return Ok(());
    }
    let src = SessionFiles::new(from, id);
    let dst = SessionFiles::new(to, id);
    for (s, d) in [
        (&src.snap, &dst.snap),
        (&src.hist, &dst.hist),
        (&src.active, &dst.active),
    ] {
        if s.exists() {
            std::fs::rename(s, d)?;
        }
    }
    crate::journal::fsync_dir(to)?;
    crate::journal::fsync_dir(from)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::read_journal;
    use crate::json::parse;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlconf_registry_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn create_body(tuner: &str, budget: usize, seed: u64) -> Json {
        parse(&format!(
            r#"{{"tuner":"{tuner}","budget":{budget},"seed":{seed},"max_nodes":8}}"#
        ))
        .unwrap()
    }

    /// Drives a session to completion through the registry surface,
    /// evaluating suggestions with the simulator in the client role.
    fn drive(registry: &SessionRegistry, id: &str, seed: u64) {
        use mlconf_workloads::evaluator::ConfigEvaluator;
        use mlconf_workloads::objective::Objective;
        use mlconf_workloads::workload::mlp_mnist;
        let ev = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 8, seed);
        let handle = registry.get(id).unwrap();
        loop {
            let suggestion = handle.lock().unwrap().suggest().unwrap();
            if suggestion.get("done").and_then(Json::as_bool) == Some(true) {
                break;
            }
            let cfg = crate::api::config_from_json(
                &ev.space().clone(),
                suggestion.get("config").unwrap(),
            )
            .unwrap();
            let rep = suggestion.get("rep").unwrap().as_i64().unwrap() as u64;
            let fidelity = suggestion.get("fidelity").unwrap().as_f64().unwrap();
            let outcome = ev.evaluate_with_fidelity(&cfg, rep, fidelity);
            let body = obj([("outcome", outcome_to_json(&outcome))]);
            handle.lock().unwrap().report(&body).unwrap();
        }
    }

    #[test]
    fn create_suggest_report_lifecycle() {
        let dir = tmpdir("lifecycle");
        let registry = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
        let created = registry.create(&create_body("random", 4, 9)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap().to_owned();
        assert_eq!(registry.list(), vec![id.clone()]);

        drive(&registry, &id, 9);
        let handle = registry.get(&id).unwrap();
        let status = handle.lock().unwrap().status_json();
        assert_eq!(status.get("trials").unwrap().as_i64(), Some(4));
        assert_eq!(status.get("finished").unwrap().as_bool(), Some(true));
        assert!(status.get("best").unwrap().get("objective").is_some());

        assert!(registry.delete(&id));
        assert!(!registry.delete(&id));
        assert!(registry.get(&id).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suggest_is_idempotent_while_pending() {
        let dir = tmpdir("idem");
        let registry = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
        let created = registry.create(&create_body("bo", 5, 3)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap();
        let handle = registry.get(id).unwrap();
        let first = handle.lock().unwrap().suggest().unwrap();
        let second = handle.lock().unwrap().suggest().unwrap();
        assert_eq!(first, second);
        // Only one suggest was journaled.
        let ops = read_journal(&registry.files_for(id).active).unwrap();
        let suggests = ops.iter().filter(|o| **o == JournalOp::Suggest).count();
        assert_eq!(suggests, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_without_pending_conflicts() {
        let dir = tmpdir("conflict");
        let registry = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
        let created = registry.create(&create_body("random", 3, 5)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap();
        let handle = registry.get(id).unwrap();
        let outcome = mlconf_workloads::objective::TrialOutcome::failed("nope", 1.0);
        let body = obj([("outcome", outcome_to_json(&outcome))]);
        let err = handle.lock().unwrap().report(&body).unwrap_err();
        assert_eq!(err.status, 409);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_reconstructs_midrun_state_and_next_suggestion() {
        let dir = tmpdir("replay");
        // Run 1: create, execute three trials, leave one pending.
        let (id, pending_before, status_before) = {
            let registry = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
            let created = registry.create(&create_body("bo", 8, 11)).unwrap();
            let id = created.get("id").unwrap().as_str().unwrap().to_owned();
            let handle = registry.get(&id).unwrap();
            use mlconf_workloads::evaluator::ConfigEvaluator;
            use mlconf_workloads::objective::Objective;
            use mlconf_workloads::workload::mlp_mnist;
            let ev = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 8, 11);
            for _ in 0..3 {
                let s = handle.lock().unwrap().suggest().unwrap();
                let cfg =
                    crate::api::config_from_json(&ev.space().clone(), s.get("config").unwrap())
                        .unwrap();
                let rep = s.get("rep").unwrap().as_i64().unwrap() as u64;
                let fidelity = s.get("fidelity").unwrap().as_f64().unwrap();
                let outcome = ev.evaluate_with_fidelity(&cfg, rep, fidelity);
                handle
                    .lock()
                    .unwrap()
                    .report(&obj([("outcome", outcome_to_json(&outcome))]))
                    .unwrap();
            }
            let pending = handle.lock().unwrap().suggest().unwrap();
            let status = handle.lock().unwrap().status_json().render();
            (id, pending, status)
        };
        // "Crash": drop the registry, reopen over the same directory.
        let recovered = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
        let handle = recovered.get(&id).expect("session recovered");
        // The unreported suggestion is pending again, bit-identical.
        let pending_after = handle.lock().unwrap().suggest().unwrap();
        assert_eq!(pending_before.render(), pending_after.render());
        assert_eq!(status_before, handle.lock().unwrap().status_json().render());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_keyed_report_is_rejected_not_reapplied() {
        let dir = tmpdir("dedup");
        let registry = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
        let created = registry.create(&create_body("random", 4, 21)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap().to_owned();
        let handle = registry.get(&id).unwrap();
        let suggestion = handle.lock().unwrap().suggest().unwrap();
        assert!(suggestion.get("config").is_some());
        let outcome = mlconf_workloads::objective::TrialOutcome::failed("oom", 3.0);
        let body = obj([
            ("outcome", outcome_to_json(&outcome)),
            ("key", Json::Str("t0".into())),
        ]);
        let first = handle.lock().unwrap().report(&body).unwrap();
        assert!(first.get("duplicate").is_none());
        assert_eq!(first.get("trials").unwrap().as_i64(), Some(1));

        // The client's ACK was "dropped"; it retries the same report.
        let retry = handle.lock().unwrap().report(&body).unwrap();
        assert_eq!(retry.get("duplicate").unwrap().as_bool(), Some(true));
        assert_eq!(
            retry.get("trial").unwrap().as_i64(),
            first.get("trial").unwrap().as_i64()
        );
        // Not double-applied: still one trial, and only one report in
        // the journal.
        assert_eq!(
            handle.lock().unwrap().core().history().len(),
            1,
            "duplicate must not be told to the tuner"
        );
        let ops = read_journal(&registry.files_for(&id).active).unwrap();
        let reports = ops
            .iter()
            .filter(|o| matches!(o, JournalOp::Report { .. }))
            .count();
        assert_eq!(reports, 1);

        // The dedup cache survives a crash-restart (rebuilt by replay).
        drop(handle);
        drop(registry);
        let recovered = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
        let handle = recovered.get(&id).unwrap();
        let retry = handle.lock().unwrap().report(&body).unwrap();
        assert_eq!(retry.get("duplicate").unwrap().as_bool(), Some(true));
        assert_eq!(handle.lock().unwrap().core().history().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_key_does_not_mask_a_new_report() {
        let dir = tmpdir("dedup_fresh");
        let registry = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
        let created = registry.create(&create_body("random", 4, 22)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap().to_owned();
        let handle = registry.get(&id).unwrap();
        let outcome = mlconf_workloads::objective::TrialOutcome::failed("x", 1.0);
        for trial in 0..2 {
            handle.lock().unwrap().suggest().unwrap();
            let body = obj([
                ("outcome", outcome_to_json(&outcome)),
                ("key", Json::Str(format!("t{trial}"))),
            ]);
            let resp = handle.lock().unwrap().report(&body).unwrap();
            assert!(resp.get("duplicate").is_none(), "t{trial} is not a dup");
        }
        assert_eq!(handle.lock().unwrap().core().history().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_removes_every_on_disk_trace() {
        let dir = tmpdir("delete_all");
        let registry = SessionRegistry::open(&dir, RegistryConfig::new(1)).unwrap();
        let created = registry.create(&create_body("random", 4, 5)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap().to_owned();
        drive(&registry, &id, 5);
        let files = registry.files_for(&id);
        assert!(files.snap.exists());
        assert!(files.hist.exists());
        // Plant temp files as a crashed checkpoint would leave them.
        std::fs::write(files.snap.with_extension("snap.tmp"), b"partial").unwrap();
        std::fs::write(files.active.with_extension("jsonl.tmp"), b"partial").unwrap();
        assert!(registry.delete(&id));
        // The whole journal tree is clean of this session.
        let leftovers: Vec<String> = walk_files(&dir)
            .into_iter()
            .filter(|name| name.contains(&id))
            .collect();
        assert!(
            leftovers.is_empty(),
            "on-disk leak after delete: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every file name (not path) under `dir`, recursively.
    fn walk_files(dir: &Path) -> Vec<String> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                out.extend(walk_files(&path));
            } else if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                out.push(name.to_owned());
            }
        }
        out
    }

    #[test]
    fn corrupt_journal_parks_but_never_revives() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("s1.jsonl"), "garbage\n{\"op\":\"suggest\"}\n").unwrap();
        let registry = SessionRegistry::open(&dir, RegistryConfig::new(0)).unwrap();
        // Discovery parks s1; the first touch fails and leaves it parked.
        assert_eq!(registry.list(), vec!["s1".to_owned()]);
        assert!(registry.get("s1").is_none());
        // Its id stays reserved (the bad journal is preserved as
        // evidence, migrated into its shard dir); new sessions skip it.
        let created = registry.create(&create_body("random", 2, 1)).unwrap();
        assert_eq!(created.get("id").unwrap().as_str(), Some("s2"));
        assert!(registry.files_for("s1").active.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_parks_idle_sessions_and_revives_bit_identically() {
        let dir = tmpdir("evict");
        let config = RegistryConfig {
            snapshot_every: 0,
            shards: 1,
            max_sessions: 1,
        };
        let registry = SessionRegistry::open(&dir, config).unwrap();
        let created = registry.create(&create_body("bo", 6, 13)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap().to_owned();
        let handle = registry.get(&id).unwrap();
        let pending_before = handle.lock().unwrap().suggest().unwrap();
        let status_before = handle.lock().unwrap().status_json().render();
        drop(handle); // idle: no in-flight request holds the Arc

        // A second session pushes the shard over its live bound of 1,
        // evicting the idle first session to disk.
        registry.create(&create_body("random", 2, 14)).unwrap();
        let stats = &registry.shard_stats()[0];
        assert_eq!((stats.live, stats.parked), (1, 1), "first session parked");

        // The next touch revives it from the journal, bit-identically:
        // same pending suggestion, same status.
        let handle = registry.get(&id).expect("parked session revives");
        assert_eq!(
            handle.lock().unwrap().suggest().unwrap().render(),
            pending_before.render()
        );
        assert_eq!(handle.lock().unwrap().status_json().render(), status_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_flight_sessions_are_never_evicted() {
        let dir = tmpdir("evict_pinned");
        let config = RegistryConfig {
            snapshot_every: 0,
            shards: 1,
            max_sessions: 1,
        };
        let registry = SessionRegistry::open(&dir, config).unwrap();
        let created = registry.create(&create_body("random", 4, 1)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap().to_owned();
        // Hold the Arc, as an in-flight request would.
        let _handle = registry.get(&id).unwrap();
        registry.create(&create_body("random", 4, 2)).unwrap();
        let stats = &registry.shard_stats()[0];
        // Both stay live: the pinned session must not lose its journal
        // writer, so the bound is soft under concurrency.
        assert_eq!((stats.live, stats.parked), (2, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_count_change_migrates_files_and_recovers() {
        let dir = tmpdir("migrate");
        let id = {
            let config = RegistryConfig {
                snapshot_every: 1,
                shards: 2,
                max_sessions: 0,
            };
            let registry = SessionRegistry::open(&dir, config).unwrap();
            let created = registry.create(&create_body("random", 4, 17)).unwrap();
            let id = created.get("id").unwrap().as_str().unwrap().to_owned();
            drive(&registry, &id, 17);
            id
        };
        // Reopen with a different shard count: the journal, checkpoint,
        // and archive all follow the new hash assignment.
        let config = RegistryConfig {
            snapshot_every: 1,
            shards: 5,
            max_sessions: 0,
        };
        let registry = SessionRegistry::open(&dir, config).unwrap();
        let files = registry.files_for(&id);
        assert!(files.active.exists(), "journal migrated");
        assert!(files.snap.exists(), "checkpoint migrated");
        assert!(files.hist.exists(), "archive migrated");
        let handle = registry.get(&id).expect("session revives after migration");
        let status = handle.lock().unwrap().status_json();
        assert_eq!(status.get("finished").unwrap().as_bool(), Some(true));
        assert_eq!(status.get("trials").unwrap().as_i64(), Some(4));
        std::fs::remove_dir_all(&dir).ok();
    }
}
