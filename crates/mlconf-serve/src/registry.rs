//! The multi-tenant session registry: id-keyed ask/tell sessions, each
//! with its own journal, behind per-session locks.
//!
//! Locking discipline: the registry map is guarded by one mutex that is
//! held only to look up / insert / remove `Arc` handles; each session
//! has its own mutex guarding the tuner + state machine + journal.
//! No code path holds both locks at once, so suggest/report traffic on
//! distinct sessions never serializes and deadlock is impossible.

use crate::api::{
    config_to_json, executed_from_json, executed_to_json, outcome_to_json, pending_to_json,
    spec_from_json, spec_to_json, tagged_num, ApiError, SessionSpec,
};
use crate::journal::{read_journal, Journal, JournalOp};
use crate::json::{obj, Json};
use mlconf_tuners::factory::build_tuner;
use mlconf_tuners::session::{Ask, AskTellSession};
use mlconf_tuners::tuner::Tuner;
use mlconf_workloads::tunespace::default_config;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A request-level failure: HTTP status plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Human-readable explanation (sent as `{"error": ...}`).
    pub message: String,
}

impl ServeError {
    /// 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError {
            status: 400,
            message: message.into(),
        }
    }

    /// 404 Not Found.
    pub fn not_found(message: impl Into<String>) -> Self {
        ServeError {
            status: 404,
            message: message.into(),
        }
    }

    /// 409 Conflict (protocol misuse against session state).
    pub fn conflict(message: impl Into<String>) -> Self {
        ServeError {
            status: 409,
            message: message.into(),
        }
    }

    /// 500 Internal Server Error (journal write failures).
    pub fn internal(message: impl Into<String>) -> Self {
        ServeError {
            status: 500,
            message: message.into(),
        }
    }
}

impl From<ApiError> for ServeError {
    fn from(e: ApiError) -> Self {
        ServeError::bad_request(e.0)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.status, self.message)
    }
}

impl std::error::Error for ServeError {}

/// One hosted tuning session: spec, tuner, state machine, journal.
pub struct ServedSession {
    id: String,
    spec: SessionSpec,
    tuner: Box<dyn Tuner + Send>,
    core: AskTellSession<'static>,
    journal: Journal,
}

/// Builds the tuner + state machine a spec describes, from scratch.
fn machinery(spec: &SessionSpec) -> (Box<dyn Tuner + Send>, AskTellSession<'static>) {
    let tuner = build_tuner(
        &spec.tuner,
        spec.space(),
        spec.budget,
        spec.seed,
        Some(default_config(spec.max_nodes)),
    )
    .expect("spec validation checked the tuner name");
    let core = AskTellSession::new(spec.budget, spec.seed)
        .stop_conditions(spec.conditions.iter().copied())
        .warm_start(spec.warm_start.iter().cloned());
    (tuner, core)
}

impl ServedSession {
    /// The session id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The creating spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Read access to the state machine (tests and status endpoints).
    pub fn core(&self) -> &AskTellSession<'static> {
        &self.core
    }

    /// Handles `POST /sessions/{id}/suggest`.
    ///
    /// Idempotent while a trial is outstanding: re-suggesting returns
    /// the same pending trial without touching the RNG or the journal.
    /// A state-advancing ask is journaled before it executes, so a crash
    /// between journal and response replays to the same state the
    /// client would have seen.
    ///
    /// # Errors
    ///
    /// Returns 500 if the journal write fails (the ask does not happen).
    pub fn suggest(&mut self) -> Result<Json, ServeError> {
        if let Some(p) = self.core.pending() {
            return Ok(pending_to_json(p));
        }
        self.journal
            .append(&JournalOp::Suggest)
            .map_err(|e| ServeError::internal(format!("journal write failed: {e}")))?;
        match self
            .core
            .ask(self.tuner.as_mut())
            .expect("no pending trial outstanding")
        {
            Ask::Trial(p) => Ok(pending_to_json(&p)),
            Ask::Finished { reason } => Ok(obj([
                ("done", Json::Bool(true)),
                (
                    "reason",
                    reason.map_or(Json::Null, |r| Json::Str(r.name().into())),
                ),
            ])),
        }
    }

    /// Handles `POST /sessions/{id}/report`.
    ///
    /// # Errors
    ///
    /// Returns 409 when no trial is outstanding, 400 for undecodable
    /// bodies (decoded by the caller), 500 if the journal write fails.
    pub fn report(&mut self, body: &Json) -> Result<Json, ServeError> {
        let executed = executed_from_json(body)?;
        if self.core.pending().is_none() {
            return Err(ServeError::conflict(
                "no suggested trial is awaiting a report",
            ));
        }
        self.journal
            .append(&JournalOp::Report {
                executed: executed_to_json(&executed),
            })
            .map_err(|e| ServeError::internal(format!("journal write failed: {e}")))?;
        let trial = self
            .core
            .tell(self.tuner.as_mut(), executed)
            .expect("pending trial checked above");
        Ok(obj([
            ("trial", Json::Num(trial as f64)),
            ("trials", Json::Num(self.core.history().len() as f64)),
            (
                "best_objective",
                best_objective(&self.core).map_or(Json::Null, tagged_num),
            ),
            ("finished", Json::Bool(self.core.is_finished())),
        ]))
    }

    /// Handles `GET /sessions/{id}`: status, incumbent, full history.
    pub fn status_json(&self) -> Json {
        let history = self
            .core
            .history()
            .trials()
            .iter()
            .map(|t| {
                obj([
                    ("trial", Json::Num(t.index as f64)),
                    ("config", config_to_json(&t.config)),
                    ("outcome", outcome_to_json(&t.outcome)),
                ])
            })
            .collect();
        let best = self.core.history().best().map_or(Json::Null, |b| {
            obj([
                (
                    "objective",
                    b.outcome.objective.map_or(Json::Null, tagged_num),
                ),
                ("trial", Json::Num(b.index as f64)),
                ("config", config_to_json(&b.config)),
            ])
        });
        obj([
            ("id", Json::Str(self.id.clone())),
            ("spec", spec_to_json(&self.spec)),
            ("trials", Json::Num(self.core.history().len() as f64)),
            ("finished", Json::Bool(self.core.is_finished())),
            (
                "stop_reason",
                self.core
                    .stop_reason()
                    .map_or(Json::Null, |r| Json::Str(r.name().into())),
            ),
            (
                "pending",
                self.core.pending().map_or(Json::Null, pending_to_json),
            ),
            ("best", best),
            ("history", Json::Arr(history)),
        ])
    }
}

fn best_objective(core: &AskTellSession<'_>) -> Option<f64> {
    core.history().best().and_then(|b| b.outcome.objective)
}

/// Id-keyed collection of served sessions with journal-backed recovery.
pub struct SessionRegistry {
    journal_dir: PathBuf,
    inner: Mutex<Inner>,
}

struct Inner {
    sessions: HashMap<String, Arc<Mutex<ServedSession>>>,
    next_id: u64,
}

impl SessionRegistry {
    /// Opens a registry over `journal_dir`, replaying every journal
    /// found there. Unreadable or corrupt journals are skipped with a
    /// warning on stderr — one bad tenant must not block recovery of
    /// the rest.
    ///
    /// # Errors
    ///
    /// Propagates failure to create or scan the directory itself.
    pub fn open(journal_dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(journal_dir)?;
        let mut sessions = HashMap::new();
        let mut next_id = 1;
        let mut paths: Vec<PathBuf> = std::fs::read_dir(journal_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let id = match path.file_stem().and_then(|s| s.to_str()) {
                Some(stem) => stem.to_owned(),
                None => continue,
            };
            // Reserve the id whether or not replay succeeds, so a new
            // session never truncates an existing (possibly corrupt,
            // possibly evidence-bearing) journal file.
            if let Some(n) = id.strip_prefix('s').and_then(|n| n.parse::<u64>().ok()) {
                next_id = next_id.max(n + 1);
            }
            match Self::replay(&path, &id) {
                Ok(session) => {
                    sessions.insert(id, Arc::new(Mutex::new(session)));
                }
                Err(e) => {
                    eprintln!(
                        "mlconf-serve: skipping unrecoverable journal {}: {e}",
                        path.display()
                    );
                }
            }
        }
        Ok(SessionRegistry {
            journal_dir: journal_dir.to_owned(),
            inner: Mutex::new(Inner { sessions, next_id }),
        })
    }

    /// Rebuilds one session by replaying its journal: the spec rebuilds
    /// the tuner and state machine, every recorded `suggest` re-executes
    /// `ask()` (consuming the same RNG draws), and every `report`
    /// re-tells the recorded outcome. Determinism makes the result
    /// bit-identical to the pre-crash state.
    fn replay(path: &Path, id: &str) -> Result<ServedSession, ServeError> {
        let ops = read_journal(path)
            .map_err(|e| ServeError::internal(format!("unreadable journal: {e}")))?;
        let mut ops = ops.into_iter();
        let Some(JournalOp::Create { spec }) = ops.next() else {
            return Err(ServeError::internal(
                "journal does not begin with a create record",
            ));
        };
        let spec = spec_from_json(&spec)?;
        let (mut tuner, mut core) = machinery(&spec);
        for op in ops {
            match op {
                JournalOp::Create { .. } => {
                    return Err(ServeError::internal("duplicate create record"));
                }
                JournalOp::Suggest => {
                    core.ask(tuner.as_mut()).map_err(|e| {
                        ServeError::internal(format!("journal replay desynchronized: {e}"))
                    })?;
                }
                JournalOp::Report { executed } => {
                    let executed = executed_from_json(&executed)?;
                    core.tell(tuner.as_mut(), executed).map_err(|e| {
                        ServeError::internal(format!("journal replay desynchronized: {e}"))
                    })?;
                }
            }
        }
        let journal = Journal::open_append(path.to_owned())
            .map_err(|e| ServeError::internal(format!("cannot reopen journal: {e}")))?;
        Ok(ServedSession {
            id: id.to_owned(),
            spec,
            tuner,
            core,
            journal,
        })
    }

    /// Handles `POST /sessions`: validates the spec, journals the
    /// creation, and registers the new session.
    ///
    /// # Errors
    ///
    /// Returns 400 for invalid specs, 500 for journal I/O failures.
    pub fn create(&self, body: &Json) -> Result<Json, ServeError> {
        let spec = spec_from_json(body)?;
        let (tuner, core) = machinery(&spec);
        let mut inner = self.inner.lock().expect("registry lock");
        let id = format!("s{}", inner.next_id);
        let path = self.journal_dir.join(format!("{id}.jsonl"));
        let mut journal = Journal::create(path)
            .map_err(|e| ServeError::internal(format!("cannot create journal: {e}")))?;
        journal
            .append(&JournalOp::Create {
                spec: spec_to_json(&spec),
            })
            .map_err(|e| ServeError::internal(format!("journal write failed: {e}")))?;
        inner.next_id += 1;
        let session = ServedSession {
            id: id.clone(),
            spec,
            tuner,
            core,
            journal,
        };
        inner
            .sessions
            .insert(id.clone(), Arc::new(Mutex::new(session)));
        Ok(obj([("id", Json::Str(id))]))
    }

    /// Looks up a session handle by id.
    pub fn get(&self, id: &str) -> Option<Arc<Mutex<ServedSession>>> {
        self.inner
            .lock()
            .expect("registry lock")
            .sessions
            .get(id)
            .cloned()
    }

    /// Handles `DELETE /sessions/{id}`: unregisters the session and
    /// removes its journal. Returns `false` for unknown ids.
    pub fn delete(&self, id: &str) -> bool {
        let removed = self
            .inner
            .lock()
            .expect("registry lock")
            .sessions
            .remove(id);
        match removed {
            Some(session) => {
                let path = session
                    .lock()
                    .expect("session lock")
                    .journal
                    .path()
                    .to_owned();
                std::fs::remove_file(path).ok();
                true
            }
            None => false,
        }
    }

    /// All live session ids, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .inner
            .lock()
            .expect("registry lock")
            .sessions
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlconf_registry_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn create_body(tuner: &str, budget: usize, seed: u64) -> Json {
        parse(&format!(
            r#"{{"tuner":"{tuner}","budget":{budget},"seed":{seed},"max_nodes":8}}"#
        ))
        .unwrap()
    }

    /// Drives a session to completion through the registry surface,
    /// evaluating suggestions with the simulator in the client role.
    fn drive(registry: &SessionRegistry, id: &str, seed: u64) {
        use mlconf_workloads::evaluator::ConfigEvaluator;
        use mlconf_workloads::objective::Objective;
        use mlconf_workloads::workload::mlp_mnist;
        let ev = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 8, seed);
        let handle = registry.get(id).unwrap();
        loop {
            let suggestion = handle.lock().unwrap().suggest().unwrap();
            if suggestion.get("done").and_then(Json::as_bool) == Some(true) {
                break;
            }
            let cfg = crate::api::config_from_json(
                &ev.space().clone(),
                suggestion.get("config").unwrap(),
            )
            .unwrap();
            let rep = suggestion.get("rep").unwrap().as_i64().unwrap() as u64;
            let fidelity = suggestion.get("fidelity").unwrap().as_f64().unwrap();
            let outcome = ev.evaluate_with_fidelity(&cfg, rep, fidelity);
            let body = obj([("outcome", outcome_to_json(&outcome))]);
            handle.lock().unwrap().report(&body).unwrap();
        }
    }

    #[test]
    fn create_suggest_report_lifecycle() {
        let dir = tmpdir("lifecycle");
        let registry = SessionRegistry::open(&dir).unwrap();
        let created = registry.create(&create_body("random", 4, 9)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap().to_owned();
        assert_eq!(registry.list(), vec![id.clone()]);

        drive(&registry, &id, 9);
        let handle = registry.get(&id).unwrap();
        let status = handle.lock().unwrap().status_json();
        assert_eq!(status.get("trials").unwrap().as_i64(), Some(4));
        assert_eq!(status.get("finished").unwrap().as_bool(), Some(true));
        assert!(status.get("best").unwrap().get("objective").is_some());

        assert!(registry.delete(&id));
        assert!(!registry.delete(&id));
        assert!(registry.get(&id).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suggest_is_idempotent_while_pending() {
        let dir = tmpdir("idem");
        let registry = SessionRegistry::open(&dir).unwrap();
        let created = registry.create(&create_body("bo", 5, 3)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap();
        let handle = registry.get(id).unwrap();
        let first = handle.lock().unwrap().suggest().unwrap();
        let second = handle.lock().unwrap().suggest().unwrap();
        assert_eq!(first, second);
        // Only one suggest was journaled.
        let ops = read_journal(&dir.join(format!("{id}.jsonl"))).unwrap();
        let suggests = ops.iter().filter(|o| **o == JournalOp::Suggest).count();
        assert_eq!(suggests, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_without_pending_conflicts() {
        let dir = tmpdir("conflict");
        let registry = SessionRegistry::open(&dir).unwrap();
        let created = registry.create(&create_body("random", 3, 5)).unwrap();
        let id = created.get("id").unwrap().as_str().unwrap();
        let handle = registry.get(id).unwrap();
        let outcome = mlconf_workloads::objective::TrialOutcome::failed("nope", 1.0);
        let body = obj([("outcome", outcome_to_json(&outcome))]);
        let err = handle.lock().unwrap().report(&body).unwrap_err();
        assert_eq!(err.status, 409);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_reconstructs_midrun_state_and_next_suggestion() {
        let dir = tmpdir("replay");
        // Run 1: create, execute three trials, leave one pending.
        let (id, pending_before, status_before) = {
            let registry = SessionRegistry::open(&dir).unwrap();
            let created = registry.create(&create_body("bo", 8, 11)).unwrap();
            let id = created.get("id").unwrap().as_str().unwrap().to_owned();
            let handle = registry.get(&id).unwrap();
            use mlconf_workloads::evaluator::ConfigEvaluator;
            use mlconf_workloads::objective::Objective;
            use mlconf_workloads::workload::mlp_mnist;
            let ev = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 8, 11);
            for _ in 0..3 {
                let s = handle.lock().unwrap().suggest().unwrap();
                let cfg =
                    crate::api::config_from_json(&ev.space().clone(), s.get("config").unwrap())
                        .unwrap();
                let rep = s.get("rep").unwrap().as_i64().unwrap() as u64;
                let fidelity = s.get("fidelity").unwrap().as_f64().unwrap();
                let outcome = ev.evaluate_with_fidelity(&cfg, rep, fidelity);
                handle
                    .lock()
                    .unwrap()
                    .report(&obj([("outcome", outcome_to_json(&outcome))]))
                    .unwrap();
            }
            let pending = handle.lock().unwrap().suggest().unwrap();
            let status = handle.lock().unwrap().status_json().render();
            (id, pending, status)
        };
        // "Crash": drop the registry, reopen over the same directory.
        let recovered = SessionRegistry::open(&dir).unwrap();
        let handle = recovered.get(&id).expect("session recovered");
        // The unreported suggestion is pending again, bit-identical.
        let pending_after = handle.lock().unwrap().suggest().unwrap();
        assert_eq!(pending_before.render(), pending_after.render());
        assert_eq!(status_before, handle.lock().unwrap().status_json().render());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_journal_is_skipped_not_fatal() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("s1.jsonl"), "garbage\n{\"op\":\"suggest\"}\n").unwrap();
        let registry = SessionRegistry::open(&dir).unwrap();
        assert!(registry.list().is_empty());
        // s1 failed to load but its id stays reserved (the bad journal
        // is preserved as evidence); new sessions skip past it.
        let created = registry.create(&create_body("random", 2, 1)).unwrap();
        assert_eq!(created.get("id").unwrap().as_str(), Some("s2"));
        assert!(dir.join("s1.jsonl").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
