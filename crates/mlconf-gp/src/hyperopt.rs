//! Kernel hyperparameter selection by maximizing the GP marginal
//! likelihood with multi-start Nelder–Mead over log-space parameters.
//!
//! Three things make this path fast. Each likelihood evaluation reuses
//! a [`DistanceWorkspace`] built once per training set, so changing ARD
//! lengthscales only recombines cached squared differences instead of
//! re-touching every input pair. Each worker thread owns one Gram
//! buffer, reused across the hundreds of likelihood evaluations its
//! restarts perform (`gram_into` overwrites every entry, so reuse is
//! bit-identical to a fresh allocation — but the O(n²) allocate-and-zero
//! per evaluation is gone, which matters at n ≥ 200 where the buffer is
//! hundreds of kilobytes). And the independent restarts are *claimed*
//! dynamically by scoped worker threads
//! ([`multi_start_nelder_mead_parallel`]) with seed-stable start points
//! and start-order folding, so no thread is stranded with all the
//! expensive restarts and results are bit-identical to sequential
//! execution for any thread count.

use mlconf_util::linalg::Cholesky;
use mlconf_util::optim::{auto_threads, multi_start_nelder_mead_parallel, NelderMeadOptions};
use rand::Rng;

use crate::gp::{GaussianProcess, GpError};
use crate::kernel::Kernel;
use crate::workspace::DistanceWorkspace;

/// Options for marginal-likelihood optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperoptOptions {
    /// Number of random restarts.
    pub restarts: usize,
    /// Max objective evaluations per restart.
    pub max_evals_per_restart: usize,
    /// Bounds for `ln ℓ` (lengthscales).
    pub log_lengthscale_bounds: (f64, f64),
    /// Bounds for `ln σ²` (signal variance).
    pub log_signal_bounds: (f64, f64),
    /// Bounds for `ln σₙ²` (noise variance), which is optimized jointly.
    pub log_noise_bounds: (f64, f64),
    /// Worker threads for the restarts: `0` selects the machine's
    /// available parallelism, `1` forces sequential execution. The fitted
    /// hyperparameters are bit-identical for any setting.
    pub threads: usize,
}

impl Default for HyperoptOptions {
    fn default() -> Self {
        HyperoptOptions {
            restarts: 4,
            max_evals_per_restart: 150,
            // Lengthscales between 0.01 and 10 unit-cube widths.
            log_lengthscale_bounds: ((0.01f64).ln(), (10.0f64).ln()),
            log_signal_bounds: ((0.05f64).ln(), (50.0f64).ln()),
            log_noise_bounds: ((1e-6f64).ln(), (1.0f64).ln()),
            threads: 0,
        }
    }
}

/// Fits a GP with hyperparameters chosen by maximizing the log marginal
/// likelihood (kernel lengthscales, signal variance, and observation
/// noise jointly).
///
/// `template` supplies the kernel family and dimensionality; its current
/// hyperparameters seed one of the restarts.
///
/// # Errors
///
/// Returns an error if no hyperparameter setting admits a successful fit
/// (pathological data such as empty input).
pub fn fit_optimized<R: Rng + ?Sized>(
    template: &Kernel,
    x: &[Vec<f64>],
    y: &[f64],
    opts: &HyperoptOptions,
    rng: &mut R,
) -> Result<GaussianProcess, GpError> {
    // Early validation with a cheap direct fit at the template settings;
    // this also serves as the fallback result.
    let fallback = GaussianProcess::fit(template.clone(), x.to_vec(), y.to_vec(), 1e-4)?;
    if x.len() < 3 {
        // Too little data to say anything about hyperparameters.
        return Ok(fallback);
    }

    let n_kernel_params = template.n_params();
    let mut bounds = Vec::with_capacity(n_kernel_params + 1);
    bounds.push(opts.log_signal_bounds);
    for _ in 0..template.dims() {
        bounds.push(opts.log_lengthscale_bounds);
    }
    bounds.push(opts.log_noise_bounds);

    let family = template.family();
    let dims = template.dims();
    // Pairwise distances and standardized targets are invariant across
    // hyperparameter candidates: compute both once, outside the search.
    let workspace = DistanceWorkspace::new(x);
    let (_, _, y_z) = crate::gp::standardize(y);
    let n = x.len();
    let objective = move |p: &[f64]| -> f64 {
        // One Gram buffer per worker thread, reused across every
        // likelihood evaluation that thread performs. `gram_into`
        // overwrites all n² entries (including the diagonal the previous
        // evaluation perturbed), so the reuse is bit-identical to the
        // old allocate-fresh path while dropping an O(n²) zeroed
        // allocation from the innermost loop.
        thread_local! {
            static GRAM_BUF: std::cell::RefCell<mlconf_util::matrix::Matrix> =
                std::cell::RefCell::new(mlconf_util::matrix::Matrix::zeros(1, 1));
        }
        let mut kernel = Kernel::new(family, dims);
        kernel.set_log_params(&p[..n_kernel_params]);
        let noise = p[n_kernel_params].exp();
        GRAM_BUF.with(|buf| {
            let mut k = buf.borrow_mut();
            if k.rows() != n || k.cols() != n {
                *k = mlconf_util::matrix::Matrix::zeros(n, n);
            }
            workspace.gram_into(&kernel, &mut k);
            k.add_diagonal(noise.max(1e-10));
            match Cholesky::factor_with_jitter(&k, 0.0, 12) {
                Ok((chol, _)) => {
                    let alpha = chol.solve_vec(&y_z);
                    // Negated: the optimizer minimizes.
                    -crate::gp::lml_from_parts(&y_z, &alpha, &chol)
                }
                Err(_) => f64::INFINITY,
            }
        })
    };

    let nm = NelderMeadOptions {
        max_evals: opts.max_evals_per_restart,
        ..Default::default()
    };
    let threads = if opts.threads == 0 {
        auto_threads()
    } else {
        opts.threads
    };
    let result = multi_start_nelder_mead_parallel(
        &objective,
        &bounds,
        opts.restarts.max(1),
        &nm,
        rng,
        threads,
    );

    if !result.fx.is_finite() {
        return Ok(fallback);
    }
    let mut kernel = Kernel::new(family, dims);
    kernel.set_log_params(&result.x[..n_kernel_params]);
    let noise = result.x[n_kernel_params].exp();
    let optimized = GaussianProcess::fit(kernel, x.to_vec(), y.to_vec(), noise)?;
    if optimized.log_marginal_likelihood() >= fallback.log_marginal_likelihood() {
        Ok(optimized)
    } else {
        Ok(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFamily;
    use mlconf_util::rng::Pcg64;

    fn smooth_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin() * 10.0 + 5.0).collect();
        (xs, ys)
    }

    #[test]
    fn optimized_beats_or_matches_default() {
        let (xs, ys) = smooth_data(16);
        let template = Kernel::new(KernelFamily::Matern52, 1);
        let default = GaussianProcess::fit(template.clone(), xs.clone(), ys.clone(), 1e-4).unwrap();
        let mut rng = Pcg64::seed(1);
        let opt =
            fit_optimized(&template, &xs, &ys, &HyperoptOptions::default(), &mut rng).unwrap();
        assert!(
            opt.log_marginal_likelihood() >= default.log_marginal_likelihood() - 1e-9,
            "{} < {}",
            opt.log_marginal_likelihood(),
            default.log_marginal_likelihood()
        );
    }

    #[test]
    fn tiny_datasets_use_fallback() {
        let xs = vec![vec![0.1], vec![0.9]];
        let ys = vec![1.0, 2.0];
        let mut rng = Pcg64::seed(2);
        let gp = fit_optimized(
            &Kernel::new(KernelFamily::SquaredExp, 1),
            &xs,
            &ys,
            &HyperoptOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(gp.n_train(), 2);
    }

    #[test]
    fn empty_data_errors() {
        let mut rng = Pcg64::seed(3);
        assert!(fit_optimized(
            &Kernel::new(KernelFamily::SquaredExp, 1),
            &[],
            &[],
            &HyperoptOptions::default(),
            &mut rng,
        )
        .is_err());
    }

    #[test]
    fn noisy_data_learns_nonzero_noise() {
        // Pure noise: the best explanation is a large noise term, which
        // should produce near-prior predictive variance everywhere.
        let mut rng = Pcg64::seed(4);
        use rand::Rng;
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let ys: Vec<f64> = (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let gp = fit_optimized(
            &Kernel::new(KernelFamily::Matern52, 1),
            &xs,
            &ys,
            &HyperoptOptions::default(),
            &mut rng,
        )
        .unwrap();
        // Posterior mean should stay near the data mean rather than
        // oscillate to chase noise; check a few points are within one
        // data std.
        let data_std = {
            let m = ys.iter().sum::<f64>() / 30.0;
            (ys.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / 30.0).sqrt()
        };
        let p = gp.predict(&[0.516]);
        assert!(p.mean.abs() < 2.0 * data_std);
    }

    #[test]
    fn parallel_hyperopt_bit_identical_to_sequential() {
        // Seed-stability across thread counts at the golden seeds
        // {11, 22, 33}: the fitted hyperparameters (and hence the whole
        // surrogate) must not depend on parallelism or on the dynamic
        // restart scheduling. The *speedup* of the parallel path is
        // bench-gated (BENCH_gp.json), not test-gated; this test pins
        // only correctness.
        let (xs, ys) = smooth_data(14);
        let template = Kernel::new(KernelFamily::Matern52, 1);
        for seed in [11u64, 22, 33] {
            let sequential = fit_optimized(
                &template,
                &xs,
                &ys,
                &HyperoptOptions {
                    threads: 1,
                    ..HyperoptOptions::default()
                },
                &mut Pcg64::seed(seed),
            )
            .unwrap();
            for threads in [2, 3, 4, 0] {
                let parallel = fit_optimized(
                    &template,
                    &xs,
                    &ys,
                    &HyperoptOptions {
                        threads,
                        ..HyperoptOptions::default()
                    },
                    &mut Pcg64::seed(seed),
                )
                .unwrap();
                let a = sequential.kernel().log_params();
                let b = parallel.kernel().log_params();
                let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a_bits, b_bits, "seed={seed} threads={threads}");
                assert_eq!(
                    sequential.log_marginal_likelihood().to_bits(),
                    parallel.log_marginal_likelihood().to_bits(),
                    "seed={seed} threads={threads}"
                );
                assert_eq!(
                    sequential.noise_variance().to_bits(),
                    parallel.noise_variance().to_bits(),
                    "seed={seed} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (xs, ys) = smooth_data(10);
        let template = Kernel::new(KernelFamily::Matern32, 1);
        let a = fit_optimized(
            &template,
            &xs,
            &ys,
            &HyperoptOptions::default(),
            &mut Pcg64::seed(7),
        )
        .unwrap();
        let b = fit_optimized(
            &template,
            &xs,
            &ys,
            &HyperoptOptions::default(),
            &mut Pcg64::seed(7),
        )
        .unwrap();
        assert_eq!(
            a.kernel().log_params(),
            b.kernel().log_params(),
            "hyperopt must be deterministic for a fixed seed"
        );
    }
}
