//! Kernel hyperparameter selection by maximizing the GP marginal
//! likelihood with multi-start Nelder–Mead over log-space parameters.

use mlconf_util::optim::{multi_start_nelder_mead, NelderMeadOptions};
use rand::Rng;

use crate::gp::{GaussianProcess, GpError};
use crate::kernel::Kernel;

/// Options for marginal-likelihood optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperoptOptions {
    /// Number of random restarts.
    pub restarts: usize,
    /// Max objective evaluations per restart.
    pub max_evals_per_restart: usize,
    /// Bounds for `ln ℓ` (lengthscales).
    pub log_lengthscale_bounds: (f64, f64),
    /// Bounds for `ln σ²` (signal variance).
    pub log_signal_bounds: (f64, f64),
    /// Bounds for `ln σₙ²` (noise variance), which is optimized jointly.
    pub log_noise_bounds: (f64, f64),
}

impl Default for HyperoptOptions {
    fn default() -> Self {
        HyperoptOptions {
            restarts: 4,
            max_evals_per_restart: 150,
            // Lengthscales between 0.01 and 10 unit-cube widths.
            log_lengthscale_bounds: ((0.01f64).ln(), (10.0f64).ln()),
            log_signal_bounds: ((0.05f64).ln(), (50.0f64).ln()),
            log_noise_bounds: ((1e-6f64).ln(), (1.0f64).ln()),
        }
    }
}

/// Fits a GP with hyperparameters chosen by maximizing the log marginal
/// likelihood (kernel lengthscales, signal variance, and observation
/// noise jointly).
///
/// `template` supplies the kernel family and dimensionality; its current
/// hyperparameters seed one of the restarts.
///
/// # Errors
///
/// Returns an error if no hyperparameter setting admits a successful fit
/// (pathological data such as empty input).
pub fn fit_optimized<R: Rng + ?Sized>(
    template: &Kernel,
    x: &[Vec<f64>],
    y: &[f64],
    opts: &HyperoptOptions,
    rng: &mut R,
) -> Result<GaussianProcess, GpError> {
    // Early validation with a cheap direct fit at the template settings;
    // this also serves as the fallback result.
    let fallback = GaussianProcess::fit(template.clone(), x.to_vec(), y.to_vec(), 1e-4)?;
    if x.len() < 3 {
        // Too little data to say anything about hyperparameters.
        return Ok(fallback);
    }

    let n_kernel_params = template.n_params();
    let mut bounds = Vec::with_capacity(n_kernel_params + 1);
    bounds.push(opts.log_signal_bounds);
    for _ in 0..template.dims() {
        bounds.push(opts.log_lengthscale_bounds);
    }
    bounds.push(opts.log_noise_bounds);

    let family = template.family();
    let dims = template.dims();
    let xs = x.to_vec();
    let ys = y.to_vec();
    let mut objective = move |p: &[f64]| -> f64 {
        let mut kernel = Kernel::new(family, dims);
        kernel.set_log_params(&p[..n_kernel_params]);
        let noise = p[n_kernel_params].exp();
        match GaussianProcess::fit(kernel, xs.clone(), ys.clone(), noise) {
            // Negated: the optimizer minimizes.
            Ok(gp) => -gp.log_marginal_likelihood(),
            Err(_) => f64::INFINITY,
        }
    };

    let nm = NelderMeadOptions {
        max_evals: opts.max_evals_per_restart,
        ..Default::default()
    };
    let result = multi_start_nelder_mead(&mut objective, &bounds, opts.restarts.max(1), &nm, rng);

    if !result.fx.is_finite() {
        return Ok(fallback);
    }
    let mut kernel = Kernel::new(family, dims);
    kernel.set_log_params(&result.x[..n_kernel_params]);
    let noise = result.x[n_kernel_params].exp();
    let optimized = GaussianProcess::fit(kernel, x.to_vec(), y.to_vec(), noise)?;
    if optimized.log_marginal_likelihood() >= fallback.log_marginal_likelihood() {
        Ok(optimized)
    } else {
        Ok(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFamily;
    use mlconf_util::rng::Pcg64;

    fn smooth_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin() * 10.0 + 5.0).collect();
        (xs, ys)
    }

    #[test]
    fn optimized_beats_or_matches_default() {
        let (xs, ys) = smooth_data(16);
        let template = Kernel::new(KernelFamily::Matern52, 1);
        let default = GaussianProcess::fit(template.clone(), xs.clone(), ys.clone(), 1e-4).unwrap();
        let mut rng = Pcg64::seed(1);
        let opt = fit_optimized(&template, &xs, &ys, &HyperoptOptions::default(), &mut rng)
            .unwrap();
        assert!(
            opt.log_marginal_likelihood() >= default.log_marginal_likelihood() - 1e-9,
            "{} < {}",
            opt.log_marginal_likelihood(),
            default.log_marginal_likelihood()
        );
    }

    #[test]
    fn tiny_datasets_use_fallback() {
        let xs = vec![vec![0.1], vec![0.9]];
        let ys = vec![1.0, 2.0];
        let mut rng = Pcg64::seed(2);
        let gp = fit_optimized(
            &Kernel::new(KernelFamily::SquaredExp, 1),
            &xs,
            &ys,
            &HyperoptOptions::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(gp.n_train(), 2);
    }

    #[test]
    fn empty_data_errors() {
        let mut rng = Pcg64::seed(3);
        assert!(fit_optimized(
            &Kernel::new(KernelFamily::SquaredExp, 1),
            &[],
            &[],
            &HyperoptOptions::default(),
            &mut rng,
        )
        .is_err());
    }

    #[test]
    fn noisy_data_learns_nonzero_noise() {
        // Pure noise: the best explanation is a large noise term, which
        // should produce near-prior predictive variance everywhere.
        let mut rng = Pcg64::seed(4);
        use rand::Rng;
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let ys: Vec<f64> = (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let gp = fit_optimized(
            &Kernel::new(KernelFamily::Matern52, 1),
            &xs,
            &ys,
            &HyperoptOptions::default(),
            &mut rng,
        )
        .unwrap();
        // Posterior mean should stay near the data mean rather than
        // oscillate to chase noise; check a few points are within one
        // data std.
        let data_std = {
            let m = ys.iter().sum::<f64>() / 30.0;
            (ys.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / 30.0).sqrt()
        };
        let p = gp.predict(&[0.516]);
        assert!(p.mean.abs() < 2.0 * data_std);
    }

    #[test]
    fn deterministic_under_seed() {
        let (xs, ys) = smooth_data(10);
        let template = Kernel::new(KernelFamily::Matern32, 1);
        let a = fit_optimized(
            &template,
            &xs,
            &ys,
            &HyperoptOptions::default(),
            &mut Pcg64::seed(7),
        )
        .unwrap();
        let b = fit_optimized(
            &template,
            &xs,
            &ys,
            &HyperoptOptions::default(),
            &mut Pcg64::seed(7),
        )
        .unwrap();
        assert_eq!(
            a.kernel().log_params(),
            b.kernel().log_params(),
            "hyperopt must be deterministic for a fixed seed"
        );
    }
}
