//! The surrogate-model abstraction.
//!
//! Acquisition maximization only ever needs a posterior mean and
//! variance at query points; it does not care whether those come from an
//! exact GP or a bounded-cost approximation. [`Surrogate`] captures that
//! contract so [`crate::acquisition`] can score candidates against any
//! implementation — today the exact [`GaussianProcess`] and the
//! subset-of-data [`crate::sparse::SparseGaussianProcess`] — and tuners
//! can switch models without touching their suggest loop.

use crate::gp::{GaussianProcess, PredictWorkspace, Prediction};
use crate::kernel::Kernel;

/// A fitted surrogate model: posterior queries plus the metadata the
/// Bayesian-optimization loop persists across refits.
pub trait Surrogate {
    /// Posterior prediction at `x_star` using caller-owned scratch
    /// buffers, so batch scoring performs no per-point allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x_star` has the wrong dimensionality.
    fn predict_with(&self, x_star: &[f64], ws: &mut PredictWorkspace) -> Prediction;

    /// Posterior prediction at a single point (allocates a transient
    /// workspace; use [`Surrogate::predict_with`] in loops).
    ///
    /// # Panics
    ///
    /// Panics if `x_star` has the wrong dimensionality.
    fn predict(&self, x_star: &[f64]) -> Prediction {
        self.predict_with(x_star, &mut PredictWorkspace::default())
    }

    /// The kernel in use (with its fitted hyperparameters).
    fn kernel(&self) -> &Kernel;

    /// Number of training points the model actually conditions on (for
    /// a sparse model this is the subset size, not the history length).
    fn n_train(&self) -> usize;

    /// The observation-noise variance (standardized units).
    fn noise_variance(&self) -> f64;

    /// Log marginal likelihood of the conditioned-on targets.
    fn log_marginal_likelihood(&self) -> f64;
}

impl Surrogate for GaussianProcess {
    fn predict_with(&self, x_star: &[f64], ws: &mut PredictWorkspace) -> Prediction {
        GaussianProcess::predict_with(self, x_star, ws)
    }

    fn kernel(&self) -> &Kernel {
        GaussianProcess::kernel(self)
    }

    fn n_train(&self) -> usize {
        GaussianProcess::n_train(self)
    }

    fn noise_variance(&self) -> f64 {
        GaussianProcess::noise_variance(self)
    }

    fn log_marginal_likelihood(&self) -> f64 {
        GaussianProcess::log_marginal_likelihood(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFamily;

    #[test]
    fn trait_dispatch_matches_inherent_methods() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).cos()).collect();
        let gp = GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 1), xs, ys, 1e-4)
            .expect("fit");
        let via_trait = Surrogate::predict(&gp, &[0.4]);
        let direct = GaussianProcess::predict(&gp, &[0.4]);
        assert_eq!(via_trait.mean, direct.mean);
        assert_eq!(via_trait.variance, direct.variance);
        assert_eq!(Surrogate::n_train(&gp), 8);
        assert_eq!(
            Surrogate::log_marginal_likelihood(&gp),
            GaussianProcess::log_marginal_likelihood(&gp)
        );
    }
}
