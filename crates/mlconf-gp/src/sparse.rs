//! Subset-of-data sparse Gaussian process.
//!
//! Exact GP inference is O(n³) in the number of observations; a
//! long-lived tuning session accumulating thousands of trials cannot
//! afford that per suggest. [`SparseGaussianProcess`] bounds the cost by
//! conditioning on a fixed-size subset of at most `m` points chosen by a
//! deterministic three-part policy:
//!
//! 1. **Incumbent anchors** — the `incumbent_k` best-target points, so
//!    the model stays sharp around the optimum the acquisition exploits;
//! 2. **Recency** — the `recent_k` most recent points, so the model
//!    tracks where the search currently is;
//! 3. **Diversity fill** — greedy farthest-point (k-center) selection
//!    over the remainder, so posterior variance stays calibrated across
//!    the rest of the space.
//!
//! Selection touches every point once per round (O(n·m) distance work,
//! no kernel evaluations), and the exact GP fit on the subset is O(m³)
//! with O(m) kernel evaluations per posterior query — so a whole suggest
//! is O(n·m), not O(n³). The subset fit reuses [`GaussianProcess`]
//! wholesale, inheriting the jitter-escalation path that keeps duplicate
//! and clustered points finite.

use crate::gp::{GaussianProcess, GpError, PredictWorkspace, Prediction};
use crate::kernel::Kernel;
use crate::surrogate::Surrogate;

/// Subset-selection policy for [`SparseGaussianProcess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseConfig {
    /// Maximum conditioning-set size `m`; with `n ≤ max_points` the
    /// sparse model degenerates to the exact GP on all data.
    pub max_points: usize,
    /// How many best-target points are always kept.
    pub incumbent_k: usize,
    /// How many most-recent points are always kept.
    pub recent_k: usize,
}

impl Default for SparseConfig {
    fn default() -> Self {
        SparseConfig {
            max_points: 256,
            incumbent_k: 64,
            recent_k: 64,
        }
    }
}

impl SparseConfig {
    /// Deterministically selects the conditioning subset for `(xs, ys)`.
    ///
    /// Returns ascending, duplicate-free indices into `xs`; all of them
    /// when `n ≤ max_points`. Ties (equal targets, equal distances) break
    /// toward the lower index, so the selection is a pure function of the
    /// data — no RNG is consumed.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length or `max_points == 0`.
    pub fn select(&self, xs: &[Vec<f64>], ys: &[f64]) -> Vec<usize> {
        assert_eq!(xs.len(), ys.len(), "selection input length mismatch");
        assert!(self.max_points > 0, "max_points must be positive");
        let n = xs.len();
        if n <= self.max_points {
            return (0..n).collect();
        }

        let mut chosen = vec![false; n];
        let mut n_chosen = 0usize;

        // 1. Incumbent anchors: best targets first, index as tie-break.
        // NaNs (never produced by the tuner's training-data mapping) sort
        // last so they are only kept when everything else ran out.
        let mut by_target: Vec<usize> = (0..n).collect();
        by_target.sort_by(|&a, &b| {
            ys[a]
                .partial_cmp(&ys[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in by_target.iter().take(self.incumbent_k.min(self.max_points)) {
            if !chosen[i] {
                chosen[i] = true;
                n_chosen += 1;
            }
        }

        // 2. Recency: the tail of the history.
        for i in (0..n).rev().take(self.recent_k) {
            if n_chosen >= self.max_points {
                break;
            }
            if !chosen[i] {
                chosen[i] = true;
                n_chosen += 1;
            }
        }

        // 3. Greedy farthest-point fill: repeatedly take the unchosen
        // point farthest (squared Euclidean, encoded space) from the
        // current subset. `min_sq` caches each point's distance to the
        // subset so every round is one O(n·d) sweep.
        let mut min_sq = vec![f64::INFINITY; n];
        for i in 0..n {
            if chosen[i] {
                min_sq[i] = 0.0;
                continue;
            }
            for j in 0..n {
                if chosen[j] {
                    min_sq[i] = min_sq[i].min(sq_dist(&xs[i], &xs[j]));
                }
            }
        }
        while n_chosen < self.max_points {
            let mut far = None;
            let mut far_d = -1.0;
            for i in 0..n {
                if !chosen[i] && min_sq[i] > far_d {
                    far = Some(i);
                    far_d = min_sq[i];
                }
            }
            let Some(pick) = far else { break };
            chosen[pick] = true;
            n_chosen += 1;
            min_sq[pick] = 0.0;
            for i in 0..n {
                if !chosen[i] {
                    min_sq[i] = min_sq[i].min(sq_dist(&xs[i], &xs[pick]));
                }
            }
        }

        (0..n).filter(|&i| chosen[i]).collect()
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
}

/// An exact GP conditioned on a bounded, deterministically chosen subset
/// of the observations (see the module docs for the policy).
#[derive(Debug, Clone)]
pub struct SparseGaussianProcess {
    gp: GaussianProcess,
    selected: Vec<usize>,
    n_total: usize,
}

impl SparseGaussianProcess {
    /// Selects the conditioning subset and fits an exact GP on it.
    ///
    /// # Errors
    ///
    /// Propagates [`GpError`] from the subset fit (empty data, ragged
    /// inputs, or a Gram matrix the jitter schedule cannot rescue).
    pub fn fit(
        kernel: Kernel,
        xs: &[Vec<f64>],
        ys: &[f64],
        noise_variance: f64,
        config: &SparseConfig,
    ) -> Result<Self, GpError> {
        if xs.len() != ys.len() {
            return Err(GpError::BadTrainingData {
                reason: format!("{} inputs but {} targets", xs.len(), ys.len()),
            });
        }
        let selected = config.select(xs, ys);
        let sub_x: Vec<Vec<f64>> = selected.iter().map(|&i| xs[i].clone()).collect();
        let sub_y: Vec<f64> = selected.iter().map(|&i| ys[i]).collect();
        let gp = GaussianProcess::fit(kernel, sub_x, sub_y, noise_variance)?;
        Ok(SparseGaussianProcess {
            gp,
            selected,
            n_total: xs.len(),
        })
    }

    /// Wraps an already-fitted subset GP (used when hyperparameters were
    /// optimized on the subset and the fitted model should be kept as-is).
    ///
    /// # Panics
    ///
    /// Panics if `gp.n_train() != selected.len()` or `selected` is not
    /// within `0..n_total`.
    pub fn from_fitted(gp: GaussianProcess, selected: Vec<usize>, n_total: usize) -> Self {
        assert_eq!(
            gp.n_train(),
            selected.len(),
            "fitted GP size must match the selection"
        );
        assert!(
            selected.iter().all(|&i| i < n_total),
            "selection index out of range"
        );
        SparseGaussianProcess {
            gp,
            selected,
            n_total,
        }
    }

    /// The exact GP over the selected subset.
    pub fn inner(&self) -> &GaussianProcess {
        &self.gp
    }

    /// Ascending indices (into the full history) of the conditioning set.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// Size of the full history the subset was drawn from.
    pub fn n_total(&self) -> usize {
        self.n_total
    }
}

impl Surrogate for SparseGaussianProcess {
    fn predict_with(&self, x_star: &[f64], ws: &mut PredictWorkspace) -> Prediction {
        self.gp.predict_with(x_star, ws)
    }

    fn kernel(&self) -> &Kernel {
        self.gp.kernel()
    }

    fn n_train(&self) -> usize {
        self.gp.n_train()
    }

    fn noise_variance(&self) -> f64 {
        self.gp.noise_variance()
    }

    fn log_marginal_likelihood(&self) -> f64 {
        self.gp.log_marginal_likelihood()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFamily;
    use crate::ops;

    const DIMS: usize = 3;

    /// Deterministic pseudo-random training set on the unit cube.
    fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..DIMS).map(|_| next()).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                let a = x[0] - 0.3;
                let b = x[1] - 0.6;
                a * a + b * b + 0.1 * x[2]
            })
            .collect();
        (xs, ys)
    }

    fn small_config() -> SparseConfig {
        SparseConfig {
            max_points: 16,
            incumbent_k: 4,
            recent_k: 4,
        }
    }

    #[test]
    fn selection_is_identity_below_budget() {
        let (xs, ys) = training_data(10);
        let sel = small_config().select(&xs, &ys);
        assert_eq!(sel, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn selection_is_sorted_unique_and_sized() {
        let (xs, ys) = training_data(80);
        let cfg = small_config();
        let sel = cfg.select(&xs, &ys);
        assert_eq!(sel.len(), cfg.max_points);
        assert!(sel.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
        assert!(sel.iter().all(|&i| i < 80));
    }

    #[test]
    fn selection_keeps_incumbent_and_most_recent() {
        let (xs, ys) = training_data(120);
        let cfg = small_config();
        let sel = cfg.select(&xs, &ys);
        let best = (0..ys.len())
            .min_by(|&a, &b| ys[a].partial_cmp(&ys[b]).unwrap())
            .unwrap();
        assert!(sel.contains(&best), "incumbent dropped from the subset");
        assert!(sel.contains(&119), "most recent point dropped");
    }

    #[test]
    fn selection_is_deterministic() {
        let (xs, ys) = training_data(200);
        let cfg = SparseConfig::default();
        assert_eq!(cfg.select(&xs, &ys), cfg.select(&xs, &ys));
    }

    #[test]
    fn diversity_fill_spreads_out() {
        // All mass clustered at one corner except a handful of far
        // points: farthest-point fill must pick up the far points.
        let mut xs: Vec<Vec<f64>> = (0..60).map(|i| vec![0.01 * (i % 5) as f64; DIMS]).collect();
        xs.push(vec![0.95; DIMS]);
        let ys: Vec<f64> = (0..xs.len()).map(|i| i as f64).collect();
        let cfg = SparseConfig {
            max_points: 8,
            incumbent_k: 2,
            recent_k: 2,
        };
        let sel = cfg.select(&xs, &ys);
        assert!(
            sel.contains(&60),
            "farthest point must be selected by the diversity fill: {sel:?}"
        );
    }

    #[test]
    fn below_budget_fit_is_bit_identical_to_exact() {
        let (xs, ys) = training_data(12);
        let kernel = Kernel::new(KernelFamily::Matern52, DIMS);
        let sparse =
            SparseGaussianProcess::fit(kernel.clone(), &xs, &ys, 1e-4, &small_config()).unwrap();
        let exact = GaussianProcess::fit(kernel, xs.clone(), ys, 1e-4).unwrap();
        assert_eq!(
            sparse.log_marginal_likelihood().to_bits(),
            exact.log_marginal_likelihood().to_bits()
        );
        for x in &xs {
            let a = Surrogate::predict(&sparse, x);
            let b = GaussianProcess::predict(&exact, x);
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.variance.to_bits(), b.variance.to_bits());
        }
    }

    #[test]
    fn predictions_finite_on_duplicate_and_clustered_points() {
        // Duplicates both inside and outside the subset: the inherited
        // jitter escalation must keep everything finite.
        let mut xs: Vec<Vec<f64>> = Vec::new();
        for i in 0..50 {
            let base = vec![0.5 + 1e-12 * (i % 3) as f64; DIMS];
            xs.push(base);
        }
        let ys: Vec<f64> = (0..50).map(|i| 1.0 + 0.01 * (i % 7) as f64).collect();
        let sparse = SparseGaussianProcess::fit(
            Kernel::new(KernelFamily::SquaredExp, DIMS),
            &xs,
            &ys,
            1e-6,
            &small_config(),
        )
        .expect("jitter escalation rescues duplicate-heavy subsets");
        for x in [&vec![0.5; DIMS], &vec![0.9; DIMS]] {
            let p = Surrogate::predict(&sparse, x);
            assert!(p.mean.is_finite());
            assert!(p.variance.is_finite() && p.variance >= 0.0);
        }
    }

    #[test]
    fn exposes_selection_metadata() {
        let (xs, ys) = training_data(40);
        let cfg = small_config();
        let sparse = SparseGaussianProcess::fit(
            Kernel::new(KernelFamily::Matern52, DIMS),
            &xs,
            &ys,
            1e-4,
            &cfg,
        )
        .unwrap();
        assert_eq!(sparse.n_total(), 40);
        assert_eq!(Surrogate::n_train(&sparse), cfg.max_points);
        assert_eq!(sparse.selected().len(), cfg.max_points);
        assert_eq!(sparse.inner().n_train(), cfg.max_points);
    }

    /// The per-suggest latency bound, in kernel evaluations rather than
    /// wall clock so CI stays deterministic: at n = 10k a sparse
    /// fit-plus-candidate-scoring pass must cost O(n·m) kernel evals —
    /// nowhere near the O(n²)-per-query (and O(n³) refit) exact path.
    #[test]
    fn sparse_suggest_cost_at_10k_is_linear_in_n() {
        let n = 10_000usize;
        let candidates = 64usize;
        let cfg = SparseConfig::default();
        let m = cfg.max_points as u64;
        let (xs, ys) = training_data(n);

        ops::reset_kernel_evals();
        let sparse = SparseGaussianProcess::fit(
            Kernel::new(KernelFamily::Matern52, DIMS),
            &xs,
            &ys,
            1e-4,
            &cfg,
        )
        .unwrap();
        let mut ws = PredictWorkspace::default();
        for i in 0..candidates {
            let q = vec![i as f64 / candidates as f64; DIMS];
            let p = sparse.predict_with(&q, &mut ws);
            assert!(p.mean.is_finite());
        }
        let evals = ops::kernel_evals();

        // Expected: subset Gram m(m+1)/2, plus (m cross + 1 diagonal)
        // per candidate. Selection uses plain distances — zero kernel
        // evals — so the total is far below even one exact Gram row per
        // history point.
        let expected = m * (m + 1) / 2 + candidates as u64 * (m + 1);
        assert_eq!(evals, expected, "unexpected kernel-eval count");
        assert!(
            evals <= (n as u64) * m,
            "sparse suggest used {evals} kernel evals, above the O(n·m) budget {}",
            (n as u64) * m
        );
        // And the exact path's cost floor for comparison: one Gram alone
        // is n(n+1)/2 ≈ 50M evals — two orders of magnitude above.
        assert!(evals * 100 <= (n as u64) * (n as u64 + 1) / 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::kernel::KernelFamily;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Heavily duplicated / clustered training sets — the worst case
        /// for a subset fit's Gram conditioning — must still yield
        /// finite, nonnegative-variance predictions everywhere.
        #[test]
        fn predictions_stay_finite_on_clustered_data(
            centers in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 3), 1..4),
            copies in 8usize..25,
            jitter in 0.0f64..1e-10,
            query in proptest::collection::vec(0.0f64..=1.0, 3),
        ) {
            let mut xs: Vec<Vec<f64>> = Vec::new();
            for i in 0..copies {
                for c in &centers {
                    xs.push(
                        c.iter()
                            .map(|&v| (v + jitter * (i % 3) as f64).min(1.0))
                            .collect(),
                    );
                }
            }
            let ys: Vec<f64> = (0..xs.len()).map(|i| 1.0 + 0.1 * (i % 5) as f64).collect();
            let cfg = SparseConfig { max_points: 12, incumbent_k: 3, recent_k: 3 };
            let sparse = SparseGaussianProcess::fit(
                Kernel::new(KernelFamily::SquaredExp, 3), &xs, &ys, 1e-6, &cfg)
                .expect("jitter escalation rescues duplicate-heavy subsets");
            let p = Surrogate::predict(&sparse, &query);
            prop_assert!(p.mean.is_finite());
            prop_assert!(p.variance.is_finite() && p.variance >= 0.0);
        }

        /// With the whole training set under budget, the sparse model IS
        /// the exact GP — likelihood and posterior agree to the bit for
        /// arbitrary data and queries.
        #[test]
        fn below_budget_matches_exact_to_the_bit(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 3), 2..16),
            query in proptest::collection::vec(0.0f64..=1.0, 3),
        ) {
            let ys: Vec<f64> = pts
                .iter()
                .map(|p| p[0] - 0.5 * p[1] + p[2] * p[2])
                .collect();
            let kernel = Kernel::new(KernelFamily::Matern52, 3);
            let cfg = SparseConfig { max_points: 16, incumbent_k: 4, recent_k: 4 };
            let sparse =
                SparseGaussianProcess::fit(kernel.clone(), &pts, &ys, 1e-6, &cfg).unwrap();
            let exact = GaussianProcess::fit(kernel, pts.clone(), ys, 1e-6).unwrap();
            prop_assert_eq!(
                Surrogate::log_marginal_likelihood(&sparse).to_bits(),
                exact.log_marginal_likelihood().to_bits()
            );
            let a = Surrogate::predict(&sparse, &query);
            let b = exact.predict(&query);
            prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            prop_assert_eq!(a.variance.to_bits(), b.variance.to_bits());
        }
    }
}
