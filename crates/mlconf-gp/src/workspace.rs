//! Cached pairwise-distance workspace for hyperparameter search.
//!
//! The marginal-likelihood optimizer evaluates the kernel Gram matrix
//! hundreds of times over the *same* training inputs while only the ARD
//! hyperparameters change. For stationary ARD kernels the Gram entry is
//! `σ² · g(Σ_d (xᵢ[d]−xⱼ[d])² / ℓ_d²)`, so the per-dimension squared
//! differences can be computed once and recombined per candidate
//! lengthscale vector. That turns each likelihood evaluation's Gram
//! assembly from `O(n² d)` input-touching work (with a division per
//! dimension) into a cache-friendly multiply–add sweep over a
//! precomputed table.

use mlconf_util::matrix::Matrix;

use crate::kernel::Kernel;

/// Precomputed per-dimension squared differences for a fixed training
/// set, shared by all Gram evaluations during hyperparameter search.
///
/// Storage is pair-major over the lower triangle: the `dims` squared
/// differences of a pair sit contiguously, so the recombination loop for
/// one Gram entry is a single contiguous dot product with the inverse
/// squared lengthscales.
///
/// # Examples
///
/// ```
/// use mlconf_gp::kernel::{Kernel, KernelFamily};
/// use mlconf_gp::workspace::DistanceWorkspace;
///
/// let xs = vec![vec![0.1, 0.9], vec![0.4, 0.2], vec![0.8, 0.5]];
/// let ws = DistanceWorkspace::new(&xs);
/// let kernel = Kernel::new(KernelFamily::Matern52, 2);
/// let fast = ws.gram(&kernel);
/// let slow = kernel.gram(&xs);
/// assert!(fast.max_abs_diff(&slow) < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DistanceWorkspace {
    n: usize,
    dims: usize,
    /// `sq[(i(i+1)/2 + j) * dims + d] = (xs[i][d] - xs[j][d])²` for `j ≤ i`.
    sq: Vec<f64>,
}

impl DistanceWorkspace {
    /// Builds the workspace from training inputs.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or its rows have differing lengths.
    pub fn new(xs: &[Vec<f64>]) -> Self {
        assert!(
            !xs.is_empty(),
            "distance workspace needs at least one point"
        );
        let n = xs.len();
        let dims = xs[0].len();
        let mut sq = Vec::with_capacity(n * (n + 1) / 2 * dims);
        for (i, xi) in xs.iter().enumerate() {
            assert_eq!(xi.len(), dims, "ragged training inputs");
            for xj in &xs[..=i] {
                for (&a, &b) in xi.iter().zip(xj) {
                    let d = a - b;
                    sq.push(d * d);
                }
            }
        }
        DistanceWorkspace { n, dims, sq }
    }

    /// Number of training points covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: construction rejects empty input.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Input dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Assembles the Gram matrix `K(X, X)` for `kernel` from the cached
    /// differences.
    ///
    /// Numerically equivalent to [`Kernel::gram`] on the original inputs
    /// (the scaled distance is recombined as `Σ d²/ℓ²` instead of
    /// `Σ (d/ℓ)²`, so entries may differ at the last ulp).
    ///
    /// # Panics
    ///
    /// Panics if the kernel dimensionality differs from the workspace's.
    pub fn gram(&self, kernel: &Kernel) -> Matrix {
        let mut k = Matrix::zeros(self.n, self.n);
        self.gram_into(kernel, &mut k);
        k
    }

    /// Allocation-free variant of [`DistanceWorkspace::gram`] writing
    /// into a caller-owned `n × n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the kernel dimensionality differs from the workspace's
    /// or `out` is not `n × n`.
    pub fn gram_into(&self, kernel: &Kernel, out: &mut Matrix) {
        assert_eq!(
            kernel.dims(),
            self.dims,
            "kernel dimensionality does not match workspace"
        );
        assert!(
            out.rows() == self.n && out.cols() == self.n,
            "gram_into output must be {n}x{n}",
            n = self.n
        );
        crate::ops::add_kernel_evals((self.n as u64 * (self.n as u64 + 1)) / 2);
        let sv = kernel.signal_variance();
        let inv_l2: Vec<f64> = kernel
            .lengthscales()
            .iter()
            .map(|l| 1.0 / (l * l))
            .collect();
        let mut pair = 0;
        for i in 0..self.n {
            for j in 0..=i {
                let block = &self.sq[pair * self.dims..(pair + 1) * self.dims];
                let mut r2 = 0.0;
                for (&d2, &w) in block.iter().zip(&inv_l2) {
                    r2 += d2 * w;
                }
                let v = sv * kernel.shape(r2);
                out[(i, j)] = v;
                out[(j, i)] = v;
                pair += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFamily;

    fn grid(n: usize, dims: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dims)
                    .map(|d| ((i * (d + 3) + d) % 17) as f64 / 16.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_direct_gram_for_all_families() {
        let xs = grid(12, 3);
        let ws = DistanceWorkspace::new(&xs);
        for fam in KernelFamily::all() {
            let mut kernel = Kernel::new(fam, 3);
            kernel.set_log_params(&[0.4, -0.7, 0.2, -1.3]);
            let fast = ws.gram(&kernel);
            let slow = kernel.gram(&xs);
            assert!(
                fast.max_abs_diff(&slow) < 1e-12,
                "{fam}: {}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn recombines_for_changing_lengthscales() {
        // The point of the cache: one workspace, many hyperparameter
        // settings.
        let xs = grid(8, 2);
        let ws = DistanceWorkspace::new(&xs);
        for ls in [0.1, 0.5, 2.0] {
            let kernel = Kernel::with_params(KernelFamily::SquaredExp, 1.7, vec![ls, ls * 2.0]);
            assert!(ws.gram(&kernel).max_abs_diff(&kernel.gram(&xs)) < 1e-12);
        }
    }

    #[test]
    fn reports_shape() {
        let ws = DistanceWorkspace::new(&grid(5, 4));
        assert_eq!(ws.len(), 5);
        assert_eq!(ws.dims(), 4);
        assert!(!ws.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match workspace")]
    fn rejects_mismatched_kernel() {
        let ws = DistanceWorkspace::new(&grid(4, 2));
        ws.gram(&Kernel::new(KernelFamily::Matern52, 3));
    }
}
