//! Acquisition functions for Bayesian optimization (minimization
//! convention) and their maximization over the unit hypercube.
//!
//! All scores are *higher-is-better*: the tuner picks the candidate with
//! the maximum acquisition value. The objective being tuned (time-to-
//! accuracy, cost) is minimized, so "improvement" means falling below the
//! incumbent.

use mlconf_util::optim::{auto_threads, nelder_mead, NelderMeadOptions};
use mlconf_util::sampling::{halton, uniform_hypercube};
use mlconf_util::special::{normal_cdf, normal_pdf};
use rand::Rng;

use crate::gp::PredictWorkspace;
use crate::surrogate::Surrogate;

/// Acquisition function family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected improvement below the incumbent, with an exploration
    /// jitter `xi` (0.01 is the CherryPick-style default).
    ExpectedImprovement {
        /// Exploration jitter ξ subtracted from the incumbent.
        xi: f64,
    },
    /// Probability of improvement below the incumbent.
    ProbabilityOfImprovement {
        /// Exploration jitter ξ subtracted from the incumbent.
        xi: f64,
    },
    /// Lower confidence bound `−(μ − β·σ)` (a.k.a. GP-UCB for
    /// minimization).
    LowerConfidenceBound {
        /// Exploration weight β.
        beta: f64,
    },
}

impl Acquisition {
    /// The default used by the paper-style tuner: EI with ξ = 0.01.
    pub fn default_ei() -> Self {
        Acquisition::ExpectedImprovement { xi: 0.01 }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Acquisition::ExpectedImprovement { .. } => "ei",
            Acquisition::ProbabilityOfImprovement { .. } => "pi",
            Acquisition::LowerConfidenceBound { .. } => "lcb",
        }
    }

    /// Scores a posterior `(mean, std_dev)` against the incumbent best
    /// (smallest) observed objective. Higher is better.
    pub fn score(&self, mean: f64, std_dev: f64, best: f64) -> f64 {
        match *self {
            Acquisition::ExpectedImprovement { xi } => {
                let improvement = best - xi - mean;
                if std_dev <= 1e-12 {
                    improvement.max(0.0)
                } else {
                    let z = improvement / std_dev;
                    improvement * normal_cdf(z) + std_dev * normal_pdf(z)
                }
            }
            Acquisition::ProbabilityOfImprovement { xi } => {
                let improvement = best - xi - mean;
                if std_dev <= 1e-12 {
                    if improvement > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    normal_cdf(improvement / std_dev)
                }
            }
            Acquisition::LowerConfidenceBound { beta } => -(mean - beta * std_dev),
        }
    }

    /// Scores a surrogate posterior at an encoded point.
    pub fn score_at<S: Surrogate + ?Sized>(&self, gp: &S, x: &[f64], best: f64) -> f64 {
        let p = gp.predict(x);
        self.score(p.mean, p.std_dev(), best)
    }
}

impl std::fmt::Display for Acquisition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Acquisition::ExpectedImprovement { xi } => write!(f, "ei(xi={xi})"),
            Acquisition::ProbabilityOfImprovement { xi } => write!(f, "pi(xi={xi})"),
            Acquisition::LowerConfidenceBound { beta } => write!(f, "lcb(beta={beta})"),
        }
    }
}

/// Result of acquisition maximization.
#[derive(Debug, Clone, PartialEq)]
pub struct AcquisitionChoice {
    /// The chosen point in the unit hypercube.
    pub point: Vec<f64>,
    /// Acquisition value at the point.
    pub value: f64,
}

/// Maximizes the acquisition over `[0,1]^dims` with a hybrid strategy:
/// a large cheap candidate set (uniform + Halton + perturbations of the
/// incumbent-best training points implicit in `anchors`), followed by
/// Nelder–Mead refinement of the best few candidates.
///
/// `anchors` (may be empty) are points worth local exploration, typically
/// the best observed configurations so far.
///
/// # Panics
///
/// Panics if `dims == 0` or `n_candidates == 0`.
pub fn maximize_acquisition<S: Surrogate + Sync + ?Sized, R: Rng + ?Sized>(
    gp: &S,
    acq: Acquisition,
    best: f64,
    dims: usize,
    n_candidates: usize,
    anchors: &[Vec<f64>],
    rng: &mut R,
) -> AcquisitionChoice {
    maximize_acquisition_threads(
        gp,
        acq,
        best,
        dims,
        n_candidates,
        anchors,
        rng,
        auto_threads(),
    )
}

/// [`maximize_acquisition`] with an explicit worker-thread count.
///
/// Seed-stable by construction: every random candidate is drawn from
/// `rng` before any scoring happens, candidate scores land back in draw
/// order, the sort is stable, and the refined winners fold in rank order
/// — so for a fixed seed the choice is bit-identical for any `threads`
/// (`1` forces the sequential path).
///
/// # Panics
///
/// Panics if `dims == 0` or `n_candidates == 0`.
#[allow(clippy::too_many_arguments)]
pub fn maximize_acquisition_threads<S: Surrogate + Sync + ?Sized, R: Rng + ?Sized>(
    gp: &S,
    acq: Acquisition,
    best: f64,
    dims: usize,
    n_candidates: usize,
    anchors: &[Vec<f64>],
    rng: &mut R,
    threads: usize,
) -> AcquisitionChoice {
    assert!(dims > 0, "maximize_acquisition needs dims > 0");
    assert!(n_candidates > 0, "need at least one candidate");

    // All randomness happens up front, before any (possibly parallel)
    // scoring: the consumed RNG stream is independent of `threads`.
    let mut candidates = uniform_hypercube(n_candidates / 2 + 1, dims, rng);
    if dims <= 16 {
        candidates.extend(halton(n_candidates / 2 + 1, dims));
    } else {
        candidates.extend(uniform_hypercube(n_candidates / 2 + 1, dims, rng));
    }
    // Local perturbations around anchors.
    for anchor in anchors.iter().take(8) {
        for _ in 0..4 {
            let p: Vec<f64> = anchor
                .iter()
                .map(|&v| (v + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0))
                .collect();
            candidates.push(p);
        }
    }

    let score_chunk = |points: &[Vec<f64>]| -> Vec<f64> {
        let mut ws = PredictWorkspace::default();
        points
            .iter()
            .map(|c| {
                let p = gp.predict_with(c, &mut ws);
                acq.score(p.mean, p.std_dev(), best)
            })
            .collect()
    };
    let scores: Vec<f64> = if threads <= 1 || candidates.len() < 2 * threads {
        score_chunk(&candidates)
    } else {
        let chunk = candidates.len().div_ceil(threads);
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|points| s.spawn(move |_| score_chunk(points)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scoring worker panicked"))
                .collect()
        })
        .expect("scoring scope failed")
    };
    let mut scored: Vec<(f64, Vec<f64>)> = scores.into_iter().zip(candidates).collect();
    // Stable sort: candidates with equal scores keep draw order, so the
    // refinement starts below do not depend on the chunking above.
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    // Refine the top few with bounded Nelder–Mead on the negated score.
    let bounds: Vec<(f64, f64)> = vec![(0.0, 1.0); dims];
    let nm = NelderMeadOptions {
        max_evals: 60,
        initial_step: 0.05,
        ..Default::default()
    };
    let refine = |start: &[f64]| {
        let mut ws = PredictWorkspace::default();
        let mut f = |x: &[f64]| {
            let p = gp.predict_with(x, &mut ws);
            -acq.score(p.mean, p.std_dev(), best)
        };
        nelder_mead(&mut f, start, Some(&bounds), &nm)
    };
    let top: Vec<&Vec<f64>> = scored.iter().take(3).map(|(_, c)| c).collect();
    let refined: Vec<mlconf_util::optim::OptimResult> = if threads <= 1 || top.len() == 1 {
        top.iter().map(|start| refine(start)).collect()
    } else {
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = top
                .iter()
                .map(|start| {
                    let start: &[f64] = start;
                    s.spawn(move |_| refine(start))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("refinement worker panicked"))
                .collect()
        })
        .expect("refinement scope failed")
    };

    // Fold in rank order with strict improvement, matching the
    // sequential loop's earliest-winner tie-breaking.
    let mut best_choice = AcquisitionChoice {
        point: scored[0].1.clone(),
        value: scored[0].0,
    };
    for r in refined {
        if -r.fx > best_choice.value {
            best_choice = AcquisitionChoice {
                point: r.x,
                value: -r.fx,
            };
        }
    }
    best_choice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::GaussianProcess;
    use crate::kernel::{Kernel, KernelFamily};
    use mlconf_util::rng::Pcg64;

    #[test]
    fn ei_zero_when_mean_far_above_best_with_no_uncertainty() {
        let acq = Acquisition::ExpectedImprovement { xi: 0.0 };
        assert_eq!(acq.score(10.0, 0.0, 5.0), 0.0);
        assert_eq!(acq.score(3.0, 0.0, 5.0), 2.0);
    }

    #[test]
    fn ei_increases_with_uncertainty() {
        let acq = Acquisition::default_ei();
        let low = acq.score(5.0, 0.1, 5.0);
        let high = acq.score(5.0, 2.0, 5.0);
        assert!(high > low);
    }

    #[test]
    fn ei_decreases_with_mean() {
        let acq = Acquisition::default_ei();
        assert!(acq.score(4.0, 1.0, 5.0) > acq.score(6.0, 1.0, 5.0));
    }

    #[test]
    fn pi_is_a_probability() {
        let acq = Acquisition::ProbabilityOfImprovement { xi: 0.0 };
        for (m, s) in [(0.0, 1.0), (10.0, 3.0), (-5.0, 0.5)] {
            let v = acq.score(m, s, 1.0);
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(acq.score(0.0, 0.0, 1.0), 1.0);
        assert_eq!(acq.score(2.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn lcb_trades_off_mean_and_variance() {
        let acq = Acquisition::LowerConfidenceBound { beta: 2.0 };
        // Lower mean wins at equal std.
        assert!(acq.score(1.0, 1.0, 0.0) > acq.score(2.0, 1.0, 0.0));
        // Higher std wins at equal mean.
        assert!(acq.score(1.0, 2.0, 0.0) > acq.score(1.0, 1.0, 0.0));
    }

    fn fitted_gp() -> GaussianProcess {
        // V-shaped objective with minimum at x = 0.7.
        let xs: Vec<Vec<f64>> = vec![
            vec![0.0],
            vec![0.2],
            vec![0.4],
            vec![0.55],
            vec![0.85],
            vec![1.0],
        ];
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.7).abs() * 10.0).collect();
        GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 1), xs, ys, 1e-6).unwrap()
    }

    #[test]
    fn maximizer_targets_the_minimum_region() {
        let gp = fitted_gp();
        let mut rng = Pcg64::seed(1);
        let choice = maximize_acquisition(
            &gp,
            Acquisition::default_ei(),
            1.5, // best observed = |0.85-0.7|*10
            1,
            200,
            &[vec![0.85]],
            &mut rng,
        );
        assert!(
            (choice.point[0] - 0.7).abs() < 0.15,
            "chose {} (value {})",
            choice.point[0],
            choice.value
        );
        assert!(choice.value > 0.0);
    }

    #[test]
    fn maximizer_stays_in_unit_cube() {
        let gp = fitted_gp();
        let mut rng = Pcg64::seed(2);
        for acq in [
            Acquisition::default_ei(),
            Acquisition::ProbabilityOfImprovement { xi: 0.01 },
            Acquisition::LowerConfidenceBound { beta: 2.0 },
        ] {
            let c = maximize_acquisition(&gp, acq, 1.5, 1, 64, &[], &mut rng);
            assert!((0.0..=1.0).contains(&c.point[0]), "{acq}: {:?}", c.point);
        }
    }

    #[test]
    fn maximizer_deterministic_under_seed() {
        let gp = fitted_gp();
        let a = maximize_acquisition(
            &gp,
            Acquisition::default_ei(),
            1.5,
            1,
            100,
            &[],
            &mut Pcg64::seed(5),
        );
        let b = maximize_acquisition(
            &gp,
            Acquisition::default_ei(),
            1.5,
            1,
            100,
            &[],
            &mut Pcg64::seed(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_acquisition_bit_identical_to_sequential() {
        let gp = fitted_gp();
        let anchors = vec![vec![0.85], vec![0.55]];
        let sequential = maximize_acquisition_threads(
            &gp,
            Acquisition::default_ei(),
            1.5,
            1,
            200,
            &anchors,
            &mut Pcg64::seed(9),
            1,
        );
        for threads in [2, 4, 8] {
            let parallel = maximize_acquisition_threads(
                &gp,
                Acquisition::default_ei(),
                1.5,
                1,
                200,
                &anchors,
                &mut Pcg64::seed(9),
                threads,
            );
            assert_eq!(parallel.point, sequential.point, "threads={threads}");
            assert_eq!(
                parallel.value.to_bits(),
                sequential.value.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Acquisition::default_ei().name(), "ei");
        let s = format!("{}", Acquisition::LowerConfidenceBound { beta: 2.0 });
        assert!(s.contains("beta=2"));
    }
}
