//! Gaussian-process regression with exact inference.
//!
//! The GP is the surrogate model of the Bayesian-optimization tuner: it is
//! fit to `(encoded configuration, observed objective)` pairs and queried
//! for a posterior mean and variance at candidate configurations. Training
//! targets are standardized internally so kernel hyperpriors are scale-
//! free.

use mlconf_util::linalg::{Cholesky, LinalgError};
use mlconf_util::matrix::dot;

use crate::kernel::Kernel;

/// Error returned by GP construction or queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Training inputs were empty or inconsistent.
    BadTrainingData {
        /// Human-readable reason.
        reason: String,
    },
    /// The kernel matrix could not be factored even with jitter.
    Factorization(LinalgError),
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::BadTrainingData { reason } => write!(f, "bad training data: {reason}"),
            GpError::Factorization(e) => write!(f, "kernel factorization failed: {e}"),
        }
    }
}

impl std::error::Error for GpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpError::Factorization(e) => Some(e),
            _ => None,
        }
    }
}

/// Posterior prediction at a single point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean, in the original (un-standardized) target units.
    pub mean: f64,
    /// Posterior variance (≥ 0), in squared original units. Includes the
    /// model's observation-noise variance.
    pub variance: f64,
}

impl Prediction {
    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// A fitted Gaussian process.
///
/// # Examples
///
/// ```
/// use mlconf_gp::kernel::{Kernel, KernelFamily};
/// use mlconf_gp::gp::GaussianProcess;
///
/// // One-dimensional toy data: y = sin(4x).
/// let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin()).collect();
/// let kernel = Kernel::new(KernelFamily::Matern52, 1);
/// let gp = GaussianProcess::fit(kernel, xs.clone(), ys.clone(), 1e-6)?;
///
/// // Interpolates the training points closely.
/// let p = gp.predict(&xs[3]);
/// assert!((p.mean - ys[3]).abs() < 0.05);
/// # Ok::<(), mlconf_gp::gp::GpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    x: Vec<Vec<f64>>,
    y_mean: f64,
    y_std: f64,
    noise_variance: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    log_marginal_likelihood: f64,
}

impl GaussianProcess {
    /// Fits a GP to training data with fixed kernel hyperparameters.
    ///
    /// `noise_variance` is the observation noise σₙ² *in standardized
    /// units* (the targets are z-scored internally); `1e-4`–`1e-2` is
    /// typical for noisy systems measurements.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::BadTrainingData`] for empty/ragged inputs or
    /// non-finite targets, and [`GpError::Factorization`] if the kernel
    /// matrix cannot be factored.
    pub fn fit(
        kernel: Kernel,
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        noise_variance: f64,
    ) -> Result<Self, GpError> {
        if x.is_empty() {
            return Err(GpError::BadTrainingData {
                reason: "no training points".into(),
            });
        }
        if x.len() != y.len() {
            return Err(GpError::BadTrainingData {
                reason: format!("{} inputs but {} targets", x.len(), y.len()),
            });
        }
        for (i, row) in x.iter().enumerate() {
            if row.len() != kernel.dims() {
                return Err(GpError::BadTrainingData {
                    reason: format!(
                        "input {i} has {} dims, kernel expects {}",
                        row.len(),
                        kernel.dims()
                    ),
                });
            }
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::BadTrainingData {
                reason: "non-finite target".into(),
            });
        }
        if !(noise_variance >= 0.0 && noise_variance.is_finite()) {
            return Err(GpError::BadTrainingData {
                reason: format!("noise variance {noise_variance}"),
            });
        }

        // Standardize targets.
        let n = y.len() as f64;
        let y_mean = y.iter().sum::<f64>() / n;
        let var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n;
        let y_std = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
        let y_z: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let mut k = kernel.gram(&x);
        k.add_diagonal(noise_variance.max(1e-10));
        let (chol, _jitter) =
            Cholesky::factor_with_jitter(&k, 0.0, 12).map_err(GpError::Factorization)?;
        let alpha = chol.solve_vec(&y_z);

        // LML in standardized space: -0.5 yᵀα − 0.5 log|K| − n/2 log 2π.
        let lml = -0.5 * dot(&y_z, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * y_z.len() as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(GaussianProcess {
            kernel,
            x,
            y_mean,
            y_std,
            noise_variance: noise_variance.max(1e-10),
            chol,
            alpha,
            log_marginal_likelihood: lml,
        })
    }

    /// The kernel in use (with its fitted hyperparameters).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Number of training points.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// The observation-noise variance (standardized units).
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Log marginal likelihood of the training targets (standardized).
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal_likelihood
    }

    /// Posterior prediction at `x_star` (original target units).
    ///
    /// # Panics
    ///
    /// Panics if `x_star` has the wrong dimensionality.
    pub fn predict(&self, x_star: &[f64]) -> Prediction {
        let k_star = self.kernel.cross(&self.x, x_star);
        let mean_z = dot(&k_star, &self.alpha);
        let v = self.chol.solve_lower_vec(&k_star);
        let var_z =
            (self.kernel.eval(x_star, x_star) + self.noise_variance - dot(&v, &v)).max(0.0);
        Prediction {
            mean: self.y_mean + self.y_std * mean_z,
            variance: var_z * self.y_std * self.y_std,
        }
    }

    /// Batch prediction.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Leave-one-out style sanity metric: RMSE of posterior means at the
    /// training inputs (not a true LOO, but a cheap overfit indicator used
    /// by tests and diagnostics).
    pub fn train_rmse(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.x.len(), "target length mismatch");
        let preds: Vec<f64> = self.x.iter().map(|x| self.predict(x).mean).collect();
        mlconf_util::stats::rmse(&preds, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFamily;

    fn toy_1d(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin() + 2.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = toy_1d(12);
        let gp = GaussianProcess::fit(
            Kernel::new(KernelFamily::SquaredExp, 1),
            xs.clone(),
            ys.clone(),
            1e-8,
        )
        .unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 1e-3, "pred {} want {y}", p.mean);
        }
    }

    #[test]
    fn variance_small_at_data_large_far_away() {
        let (xs, ys) = toy_1d(8);
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 1), xs.clone(), ys, 1e-6)
                .unwrap();
        let at_data = gp.predict(&xs[0]).variance;
        // Far outside the data (unit cube edge extended).
        let far = gp.predict(&[5.0]).variance;
        assert!(at_data < far, "{at_data} !< {far}");
    }

    #[test]
    fn variance_nonnegative_everywhere() {
        let (xs, ys) = toy_1d(10);
        let gp = GaussianProcess::fit(Kernel::new(KernelFamily::Matern32, 1), xs, ys, 1e-6)
            .unwrap();
        for i in 0..100 {
            let x = [i as f64 / 99.0];
            assert!(gp.predict(&x).variance >= 0.0);
        }
    }

    #[test]
    fn mean_reverts_to_prior_far_from_data() {
        let (xs, ys) = toy_1d(8);
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let gp = GaussianProcess::fit(Kernel::new(KernelFamily::SquaredExp, 1), xs, ys, 1e-6)
            .unwrap();
        let p = gp.predict(&[100.0]);
        assert!(
            (p.mean - y_mean).abs() < 1e-6,
            "far-field mean {} vs prior {y_mean}",
            p.mean
        );
    }

    #[test]
    fn constant_targets_are_handled() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0]).collect();
        let ys = vec![3.0; 5];
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 1), xs, ys, 1e-6).unwrap();
        let p = gp.predict(&[0.35]);
        assert!((p.mean - 3.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_inputs() {
        let k = Kernel::new(KernelFamily::SquaredExp, 1);
        assert!(matches!(
            GaussianProcess::fit(k.clone(), vec![], vec![], 1e-6),
            Err(GpError::BadTrainingData { .. })
        ));
        assert!(GaussianProcess::fit(k.clone(), vec![vec![0.0]], vec![1.0, 2.0], 1e-6).is_err());
        assert!(GaussianProcess::fit(k.clone(), vec![vec![0.0, 1.0]], vec![1.0], 1e-6).is_err());
        assert!(GaussianProcess::fit(k.clone(), vec![vec![0.0]], vec![f64::NAN], 1e-6).is_err());
        assert!(GaussianProcess::fit(k, vec![vec![0.0]], vec![1.0], f64::NAN).is_err());
    }

    #[test]
    fn duplicate_points_need_jitter_and_succeed() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5]];
        let ys = vec![1.0, 1.1, 0.9];
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::SquaredExp, 1), xs, ys, 1e-6).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.0).abs() < 0.05);
    }

    #[test]
    fn higher_noise_smooths_predictions() {
        let (xs, mut ys) = toy_1d(20);
        // Add a spike.
        ys[10] += 5.0;
        let tight = GaussianProcess::fit(
            Kernel::new(KernelFamily::SquaredExp, 1),
            xs.clone(),
            ys.clone(),
            1e-8,
        )
        .unwrap();
        let smooth =
            GaussianProcess::fit(Kernel::new(KernelFamily::SquaredExp, 1), xs.clone(), ys, 0.5)
                .unwrap();
        let x_spike = &xs[10];
        // The noisy model should not chase the spike as hard.
        assert!(smooth.predict(x_spike).mean < tight.predict(x_spike).mean);
    }

    #[test]
    fn lml_prefers_correct_lengthscale() {
        // Data drawn from a smooth function: a reasonable lengthscale
        // should out-score a badly mismatched tiny one.
        let (xs, ys) = toy_1d(15);
        let good = GaussianProcess::fit(
            Kernel::with_params(KernelFamily::SquaredExp, 1.0, vec![0.3]),
            xs.clone(),
            ys.clone(),
            1e-4,
        )
        .unwrap();
        let bad = GaussianProcess::fit(
            Kernel::with_params(KernelFamily::SquaredExp, 1.0, vec![0.001]),
            xs,
            ys,
            1e-4,
        )
        .unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn multidimensional_fit() {
        let xs: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64 / 4.0, (i / 5) as f64 / 4.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + (3.0 * x[1]).cos()).collect();
        let gp = GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 2), xs.clone(), ys.clone(), 1e-6)
            .unwrap();
        assert!(gp.train_rmse(&ys) < 0.01);
        // Prediction between grid points is sensible.
        let p = gp.predict(&[0.5, 0.5]);
        let want = 0.5 * 2.0 + (1.5f64).cos();
        assert!((p.mean - want).abs() < 0.1, "pred {} want {want}", p.mean);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::kernel::KernelFamily;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn posterior_variance_nonnegative(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 2), 2..12),
            query in proptest::collection::vec(0.0f64..=1.0, 2),
        ) {
            let ys: Vec<f64> = pts.iter().map(|p| p[0] - p[1]).collect();
            let gp = GaussianProcess::fit(
                Kernel::new(KernelFamily::Matern52, 2), pts, ys, 1e-6).unwrap();
            prop_assert!(gp.predict(&query).variance >= 0.0);
        }

        #[test]
        fn variance_at_training_point_below_prior(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 2), 2..10),
        ) {
            let ys: Vec<f64> = pts.iter().map(|p| p[0] * 2.0 + p[1]).collect();
            let gp = GaussianProcess::fit(
                Kernel::new(KernelFamily::SquaredExp, 2), pts.clone(), ys, 1e-6).unwrap();
            // Prior variance (standardized) maps to y_std² + noise; the
            // posterior at an observed point must be no larger.
            let prior_like = gp.predict(&[50.0, 50.0]).variance;
            let at_data = gp.predict(&pts[0]).variance;
            prop_assert!(at_data <= prior_like + 1e-9);
        }
    }
}
