//! Gaussian-process regression with exact inference.
//!
//! The GP is the surrogate model of the Bayesian-optimization tuner: it is
//! fit to `(encoded configuration, observed objective)` pairs and queried
//! for a posterior mean and variance at candidate configurations. Training
//! targets are standardized internally so kernel hyperpriors are scale-
//! free.

use mlconf_util::linalg::{Cholesky, LinalgError};
use mlconf_util::matrix::dot;

use crate::kernel::Kernel;

/// Error returned by GP construction or queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Training inputs were empty or inconsistent.
    BadTrainingData {
        /// Human-readable reason.
        reason: String,
    },
    /// The kernel matrix could not be factored even with jitter.
    Factorization(LinalgError),
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::BadTrainingData { reason } => write!(f, "bad training data: {reason}"),
            GpError::Factorization(e) => write!(f, "kernel factorization failed: {e}"),
        }
    }
}

impl std::error::Error for GpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpError::Factorization(e) => Some(e),
            _ => None,
        }
    }
}

/// Posterior prediction at a single point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean, in the original (un-standardized) target units.
    pub mean: f64,
    /// Posterior variance (≥ 0), in squared original units. Includes the
    /// model's observation-noise variance.
    pub variance: f64,
}

impl Prediction {
    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// A fitted Gaussian process.
///
/// # Examples
///
/// ```
/// use mlconf_gp::kernel::{Kernel, KernelFamily};
/// use mlconf_gp::gp::GaussianProcess;
///
/// // One-dimensional toy data: y = sin(4x).
/// let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin()).collect();
/// let kernel = Kernel::new(KernelFamily::Matern52, 1);
/// let gp = GaussianProcess::fit(kernel, xs.clone(), ys.clone(), 1e-6)?;
///
/// // Interpolates the training points closely.
/// let p = gp.predict(&xs[3]);
/// assert!((p.mean - ys[3]).abs() < 0.05);
/// # Ok::<(), mlconf_gp::gp::GpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    noise_variance: f64,
    /// Diagonal jitter the factorization needed beyond the noise term;
    /// appended rows in [`GaussianProcess::extend`] must add the same
    /// amount to stay consistent with the stored factor.
    jitter: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    log_marginal_likelihood: f64,
}

/// Reusable scratch buffers for posterior queries, so batch prediction
/// performs no per-point allocation.
#[derive(Debug, Clone, Default)]
pub struct PredictWorkspace {
    k_star: Vec<f64>,
    v: Vec<f64>,
}

impl GaussianProcess {
    fn validate(
        kernel: &Kernel,
        x: &[Vec<f64>],
        y: &[f64],
        noise_variance: f64,
    ) -> Result<(), GpError> {
        if x.is_empty() {
            return Err(GpError::BadTrainingData {
                reason: "no training points".into(),
            });
        }
        if x.len() != y.len() {
            return Err(GpError::BadTrainingData {
                reason: format!("{} inputs but {} targets", x.len(), y.len()),
            });
        }
        for (i, row) in x.iter().enumerate() {
            if row.len() != kernel.dims() {
                return Err(GpError::BadTrainingData {
                    reason: format!(
                        "input {i} has {} dims, kernel expects {}",
                        row.len(),
                        kernel.dims()
                    ),
                });
            }
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::BadTrainingData {
                reason: "non-finite target".into(),
            });
        }
        if !(noise_variance >= 0.0 && noise_variance.is_finite()) {
            return Err(GpError::BadTrainingData {
                reason: format!("noise variance {noise_variance}"),
            });
        }
        Ok(())
    }

    /// Fits a GP to training data with fixed kernel hyperparameters.
    ///
    /// `noise_variance` is the observation noise σₙ² *in standardized
    /// units* (the targets are z-scored internally); `1e-4`–`1e-2` is
    /// typical for noisy systems measurements.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::BadTrainingData`] for empty/ragged inputs or
    /// non-finite targets, and [`GpError::Factorization`] if the kernel
    /// matrix cannot be factored.
    pub fn fit(
        kernel: Kernel,
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        noise_variance: f64,
    ) -> Result<Self, GpError> {
        Self::validate(&kernel, &x, &y, noise_variance)?;
        let gram = kernel.gram(&x);
        Self::fit_with_gram(kernel, x, y, noise_variance, gram)
    }

    /// Fits a GP from a precomputed (noise-free) kernel Gram matrix.
    ///
    /// `gram` must equal `kernel.gram(&x)` up to floating-point
    /// recombination; the hyperparameter optimizer uses this with
    /// [`crate::workspace::DistanceWorkspace`] so each likelihood
    /// evaluation reuses cached pairwise distances instead of re-touching
    /// every input pair.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GaussianProcess::fit`], plus
    /// [`GpError::BadTrainingData`] when `gram` is not `n × n`.
    pub fn fit_with_gram(
        kernel: Kernel,
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        noise_variance: f64,
        gram: mlconf_util::matrix::Matrix,
    ) -> Result<Self, GpError> {
        Self::validate(&kernel, &x, &y, noise_variance)?;
        if gram.rows() != x.len() || gram.cols() != x.len() {
            return Err(GpError::BadTrainingData {
                reason: format!(
                    "gram is {}x{}, expected {}x{}",
                    gram.rows(),
                    gram.cols(),
                    x.len(),
                    x.len()
                ),
            });
        }

        // Standardize targets.
        let (y_mean, y_std, y_z) = standardize(&y);

        let mut k = gram;
        k.add_diagonal(noise_variance.max(1e-10));
        let (chol, jitter) =
            Cholesky::factor_with_jitter(&k, 0.0, 12).map_err(GpError::Factorization)?;
        let alpha = chol.solve_vec(&y_z);
        let lml = lml_from_parts(&y_z, &alpha, &chol);

        Ok(GaussianProcess {
            kernel,
            x,
            y,
            y_mean,
            y_std,
            noise_variance: noise_variance.max(1e-10),
            jitter,
            chol,
            alpha,
            log_marginal_likelihood: lml,
        })
    }

    /// Appends observations to a fitted GP without refactorizing.
    ///
    /// The Cholesky factor is extended one row at a time in O(n²) via
    /// [`Cholesky::update_append`]; target standardization, `alpha`, and
    /// the log marginal likelihood are recomputed over the full data
    /// exactly as [`GaussianProcess::fit`] would, so with unchanged
    /// hyperparameters the result matches a fresh fit (bit-identically
    /// when no jitter is involved). Falls back to a full refit when an
    /// appended point makes the factor update numerically non-positive
    /// (e.g. a near-duplicate configuration).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::BadTrainingData`] for ragged or non-finite new
    /// observations, and [`GpError::Factorization`] if the fallback refit
    /// itself fails.
    pub fn extend(&self, x_new: &[Vec<f64>], y_new: &[f64]) -> Result<Self, GpError> {
        if x_new.len() != y_new.len() {
            return Err(GpError::BadTrainingData {
                reason: format!("{} new inputs but {} new targets", x_new.len(), y_new.len()),
            });
        }
        for (i, row) in x_new.iter().enumerate() {
            if row.len() != self.kernel.dims() {
                return Err(GpError::BadTrainingData {
                    reason: format!(
                        "new input {i} has {} dims, kernel expects {}",
                        row.len(),
                        self.kernel.dims()
                    ),
                });
            }
        }
        if y_new.iter().any(|v| !v.is_finite()) {
            return Err(GpError::BadTrainingData {
                reason: "non-finite target".into(),
            });
        }
        if x_new.is_empty() {
            return Ok(self.clone());
        }

        let mut x = self.x.clone();
        let mut chol = self.chol.clone();
        let mut incremental_ok = true;
        for xi in x_new {
            // Covariances against every point currently in the factor,
            // including earlier appends from this same call.
            let col: Vec<f64> = x.iter().map(|xp| self.kernel.eval(xp, xi)).collect();
            let diag = self.kernel.eval(xi, xi) + self.noise_variance + self.jitter;
            if chol.update_append(&col, diag).is_err() {
                incremental_ok = false;
                break;
            }
            x.push(xi.clone());
        }

        let mut y = self.y.clone();
        y.extend_from_slice(y_new);
        if !incremental_ok {
            let mut x_full = self.x.clone();
            x_full.extend(x_new.iter().cloned());
            return GaussianProcess::fit(self.kernel.clone(), x_full, y, self.noise_variance);
        }

        // Restandardize and solve against the extended factor, mirroring
        // `fit` step for step.
        let (y_mean, y_std, y_z) = standardize(&y);
        let alpha = chol.solve_vec(&y_z);
        let lml = lml_from_parts(&y_z, &alpha, &chol);

        Ok(GaussianProcess {
            kernel: self.kernel.clone(),
            x,
            y,
            y_mean,
            y_std,
            noise_variance: self.noise_variance,
            jitter: self.jitter,
            chol,
            alpha,
            log_marginal_likelihood: lml,
        })
    }

    /// The kernel in use (with its fitted hyperparameters).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Number of training points.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// The training inputs.
    pub fn x_train(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The training targets (original units).
    pub fn y_train(&self) -> &[f64] {
        &self.y
    }

    /// The observation-noise variance (standardized units).
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Log marginal likelihood of the training targets (standardized).
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal_likelihood
    }

    /// Posterior prediction at `x_star` (original target units).
    ///
    /// # Panics
    ///
    /// Panics if `x_star` has the wrong dimensionality.
    pub fn predict(&self, x_star: &[f64]) -> Prediction {
        self.predict_with(x_star, &mut PredictWorkspace::default())
    }

    /// Posterior prediction using caller-owned scratch buffers; identical
    /// results to [`GaussianProcess::predict`] with zero allocation once
    /// the workspace has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `x_star` has the wrong dimensionality.
    pub fn predict_with(&self, x_star: &[f64], ws: &mut PredictWorkspace) -> Prediction {
        let n = self.x.len();
        ws.k_star.resize(n, 0.0);
        ws.v.resize(n, 0.0);
        self.kernel.cross_into(&self.x, x_star, &mut ws.k_star);
        let mean_z = dot(&ws.k_star, &self.alpha);
        self.chol.solve_lower_vec_into(&ws.k_star, &mut ws.v);
        let var_z =
            (self.kernel.eval(x_star, x_star) + self.noise_variance - dot(&ws.v, &ws.v)).max(0.0);
        Prediction {
            mean: self.y_mean + self.y_std * mean_z,
            variance: var_z * self.y_std * self.y_std,
        }
    }

    /// Batch prediction; all queries share one back-substitution
    /// workspace, so no per-point allocation occurs.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        let mut ws = PredictWorkspace::default();
        xs.iter().map(|x| self.predict_with(x, &mut ws)).collect()
    }

    /// Leave-one-out style sanity metric: RMSE of posterior means at the
    /// training inputs (not a true LOO, but a cheap overfit indicator used
    /// by tests and diagnostics).
    pub fn train_rmse(&self, y: &[f64]) -> f64 {
        assert_eq!(y.len(), self.x.len(), "target length mismatch");
        let preds: Vec<f64> = self.predict_many(&self.x).iter().map(|p| p.mean).collect();
        mlconf_util::stats::rmse(&preds, y)
    }
}

/// Z-scores `y`, returning `(mean, std, standardized)`. A degenerate
/// spread falls back to unit scale so constant targets stay finite.
pub(crate) fn standardize(y: &[f64]) -> (f64, f64, Vec<f64>) {
    let n = y.len() as f64;
    let y_mean = y.iter().sum::<f64>() / n;
    let var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n;
    let y_std = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
    let y_z: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
    (y_mean, y_std, y_z)
}

/// LML in standardized space: `-0.5 yᵀα − 0.5 log|K| − n/2 log 2π`.
pub(crate) fn lml_from_parts(y_z: &[f64], alpha: &[f64], chol: &Cholesky) -> f64 {
    -0.5 * dot(y_z, alpha)
        - 0.5 * chol.log_det()
        - 0.5 * y_z.len() as f64 * (2.0 * std::f64::consts::PI).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFamily;

    fn toy_1d(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin() + 2.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = toy_1d(12);
        let gp = GaussianProcess::fit(
            Kernel::new(KernelFamily::SquaredExp, 1),
            xs.clone(),
            ys.clone(),
            1e-8,
        )
        .unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 1e-3, "pred {} want {y}", p.mean);
        }
    }

    #[test]
    fn variance_small_at_data_large_far_away() {
        let (xs, ys) = toy_1d(8);
        let gp = GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 1), xs.clone(), ys, 1e-6)
            .unwrap();
        let at_data = gp.predict(&xs[0]).variance;
        // Far outside the data (unit cube edge extended).
        let far = gp.predict(&[5.0]).variance;
        assert!(at_data < far, "{at_data} !< {far}");
    }

    #[test]
    fn variance_nonnegative_everywhere() {
        let (xs, ys) = toy_1d(10);
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::Matern32, 1), xs, ys, 1e-6).unwrap();
        for i in 0..100 {
            let x = [i as f64 / 99.0];
            assert!(gp.predict(&x).variance >= 0.0);
        }
    }

    #[test]
    fn mean_reverts_to_prior_far_from_data() {
        let (xs, ys) = toy_1d(8);
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::SquaredExp, 1), xs, ys, 1e-6).unwrap();
        let p = gp.predict(&[100.0]);
        assert!(
            (p.mean - y_mean).abs() < 1e-6,
            "far-field mean {} vs prior {y_mean}",
            p.mean
        );
    }

    #[test]
    fn constant_targets_are_handled() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0]).collect();
        let ys = vec![3.0; 5];
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 1), xs, ys, 1e-6).unwrap();
        let p = gp.predict(&[0.35]);
        assert!((p.mean - 3.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_inputs() {
        let k = Kernel::new(KernelFamily::SquaredExp, 1);
        assert!(matches!(
            GaussianProcess::fit(k.clone(), vec![], vec![], 1e-6),
            Err(GpError::BadTrainingData { .. })
        ));
        assert!(GaussianProcess::fit(k.clone(), vec![vec![0.0]], vec![1.0, 2.0], 1e-6).is_err());
        assert!(GaussianProcess::fit(k.clone(), vec![vec![0.0, 1.0]], vec![1.0], 1e-6).is_err());
        assert!(GaussianProcess::fit(k.clone(), vec![vec![0.0]], vec![f64::NAN], 1e-6).is_err());
        assert!(GaussianProcess::fit(k, vec![vec![0.0]], vec![1.0], f64::NAN).is_err());
    }

    #[test]
    fn duplicate_points_need_jitter_and_succeed() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5]];
        let ys = vec![1.0, 1.1, 0.9];
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::SquaredExp, 1), xs, ys, 1e-6).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.0).abs() < 0.05);
    }

    #[test]
    fn higher_noise_smooths_predictions() {
        let (xs, mut ys) = toy_1d(20);
        // Add a spike.
        ys[10] += 5.0;
        let tight = GaussianProcess::fit(
            Kernel::new(KernelFamily::SquaredExp, 1),
            xs.clone(),
            ys.clone(),
            1e-8,
        )
        .unwrap();
        let smooth = GaussianProcess::fit(
            Kernel::new(KernelFamily::SquaredExp, 1),
            xs.clone(),
            ys,
            0.5,
        )
        .unwrap();
        let x_spike = &xs[10];
        // The noisy model should not chase the spike as hard.
        assert!(smooth.predict(x_spike).mean < tight.predict(x_spike).mean);
    }

    #[test]
    fn lml_prefers_correct_lengthscale() {
        // Data drawn from a smooth function: a reasonable lengthscale
        // should out-score a badly mismatched tiny one.
        let (xs, ys) = toy_1d(15);
        let good = GaussianProcess::fit(
            Kernel::with_params(KernelFamily::SquaredExp, 1.0, vec![0.3]),
            xs.clone(),
            ys.clone(),
            1e-4,
        )
        .unwrap();
        let bad = GaussianProcess::fit(
            Kernel::with_params(KernelFamily::SquaredExp, 1.0, vec![0.001]),
            xs,
            ys,
            1e-4,
        )
        .unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn extend_matches_fresh_fit_exactly() {
        let (xs, ys) = toy_1d(14);
        let kernel = Kernel::new(KernelFamily::Matern52, 1);
        let base = GaussianProcess::fit(kernel.clone(), xs[..10].to_vec(), ys[..10].to_vec(), 1e-4)
            .unwrap();
        let extended = base.extend(&xs[10..], &ys[10..]).unwrap();
        let fresh = GaussianProcess::fit(kernel, xs.clone(), ys.clone(), 1e-4).unwrap();

        assert_eq!(extended.n_train(), 14);
        assert_eq!(
            extended.log_marginal_likelihood(),
            fresh.log_marginal_likelihood(),
            "LML must match bit-for-bit on the jitter-free path"
        );
        for x in &xs {
            let a = extended.predict(x);
            let b = fresh.predict(x);
            assert_eq!(a.mean, b.mean);
            assert_eq!(a.variance, b.variance);
        }
    }

    #[test]
    fn extend_with_empty_batch_is_identity() {
        let (xs, ys) = toy_1d(6);
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::SquaredExp, 1), xs, ys, 1e-4).unwrap();
        let same = gp.extend(&[], &[]).unwrap();
        assert_eq!(same.n_train(), gp.n_train());
        assert_eq!(same.log_marginal_likelihood(), gp.log_marginal_likelihood());
    }

    #[test]
    fn extend_validates_new_observations() {
        let (xs, ys) = toy_1d(6);
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::SquaredExp, 1), xs, ys, 1e-4).unwrap();
        assert!(gp.extend(&[vec![0.5]], &[]).is_err());
        assert!(gp.extend(&[vec![0.5, 0.5]], &[1.0]).is_err());
        assert!(gp.extend(&[vec![0.5]], &[f64::NAN]).is_err());
    }

    #[test]
    fn extend_falls_back_on_duplicate_points() {
        // Appending an exact duplicate with tiny noise makes the
        // incremental pivot non-positive; extend must transparently refit
        // (which rescues itself with jitter) instead of failing.
        let xs = vec![vec![0.2], vec![0.8]];
        let ys = vec![1.0, 2.0];
        let gp = GaussianProcess::fit(
            Kernel::new(KernelFamily::SquaredExp, 1),
            xs.clone(),
            ys,
            1e-12,
        )
        .unwrap();
        let extended = gp.extend(&[vec![0.2], vec![0.2]], &[1.1, 0.9]).unwrap();
        assert_eq!(extended.n_train(), 4);
        assert!(extended.predict(&[0.2]).variance >= 0.0);
    }

    #[test]
    fn fit_with_gram_matches_fit() {
        let (xs, ys) = toy_1d(9);
        let kernel = Kernel::new(KernelFamily::Matern32, 1);
        let gram = kernel.gram(&xs);
        let a = GaussianProcess::fit(kernel.clone(), xs.clone(), ys.clone(), 1e-4).unwrap();
        let b = GaussianProcess::fit_with_gram(kernel, xs, ys, 1e-4, gram).unwrap();
        assert_eq!(a.log_marginal_likelihood(), b.log_marginal_likelihood());
    }

    #[test]
    fn fit_with_gram_rejects_wrong_shape() {
        let (xs, ys) = toy_1d(5);
        let kernel = Kernel::new(KernelFamily::SquaredExp, 1);
        let gram = mlconf_util::matrix::Matrix::zeros(3, 3);
        assert!(matches!(
            GaussianProcess::fit_with_gram(kernel, xs, ys, 1e-4, gram),
            Err(GpError::BadTrainingData { .. })
        ));
    }

    #[test]
    fn predict_many_matches_predict_exactly() {
        let (xs, ys) = toy_1d(11);
        let gp =
            GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 1), xs, ys, 1e-4).unwrap();
        let queries: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 13.0 - 0.5]).collect();
        let batch = gp.predict_many(&queries);
        for (q, p) in queries.iter().zip(&batch) {
            let single = gp.predict(q);
            assert_eq!(p.mean, single.mean);
            assert_eq!(p.variance, single.variance);
        }
    }

    #[test]
    fn multidimensional_fit() {
        let xs: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64 / 4.0, (i / 5) as f64 / 4.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + (3.0 * x[1]).cos()).collect();
        let gp = GaussianProcess::fit(
            Kernel::new(KernelFamily::Matern52, 2),
            xs.clone(),
            ys.clone(),
            1e-6,
        )
        .unwrap();
        assert!(gp.train_rmse(&ys) < 0.01);
        // Prediction between grid points is sensible.
        let p = gp.predict(&[0.5, 0.5]);
        let want = 0.5 * 2.0 + (1.5f64).cos();
        assert!((p.mean - want).abs() < 0.1, "pred {} want {want}", p.mean);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::kernel::KernelFamily;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn posterior_variance_nonnegative(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 2), 2..12),
            query in proptest::collection::vec(0.0f64..=1.0, 2),
        ) {
            let ys: Vec<f64> = pts.iter().map(|p| p[0] - p[1]).collect();
            let gp = GaussianProcess::fit(
                Kernel::new(KernelFamily::Matern52, 2), pts, ys, 1e-6).unwrap();
            prop_assert!(gp.predict(&query).variance >= 0.0);
        }

        #[test]
        fn variance_at_training_point_below_prior(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 2), 2..10),
        ) {
            let ys: Vec<f64> = pts.iter().map(|p| p[0] * 2.0 + p[1]).collect();
            let gp = GaussianProcess::fit(
                Kernel::new(KernelFamily::SquaredExp, 2), pts.clone(), ys, 1e-6).unwrap();
            // Prior variance (standardized) maps to y_std² + noise; the
            // posterior at an observed point must be no larger.
            let prior_like = gp.predict(&[50.0, 50.0]).variance;
            let at_data = gp.predict(&pts[0]).variance;
            prop_assert!(at_data <= prior_like + 1e-9);
        }

        #[test]
        fn extend_posterior_matches_fit(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 2), 4..16),
            split in 2usize..14,
            scale in 0.5f64..50.0,
            shift in -20.0f64..20.0,
            query in proptest::collection::vec(0.0f64..=1.0, 2),
        ) {
            // Incremental extension must reproduce a fresh fit to ≤ 1e-8
            // across arbitrary observation histories, including the target
            // standardization path (targets are shifted/scaled so y_mean
            // and y_std change when the new points arrive).
            let split = split.min(pts.len() - 1);
            let ys: Vec<f64> = pts
                .iter()
                .map(|p| shift + scale * ((4.0 * p[0]).sin() - p[1]))
                .collect();
            let kernel = Kernel::new(KernelFamily::Matern52, 2);
            let base = GaussianProcess::fit(
                kernel.clone(), pts[..split].to_vec(), ys[..split].to_vec(), 1e-4).unwrap();
            let extended = base.extend(&pts[split..], &ys[split..]).unwrap();
            let fresh = GaussianProcess::fit(kernel, pts.clone(), ys, 1e-4).unwrap();

            prop_assert!(
                (extended.log_marginal_likelihood() - fresh.log_marginal_likelihood()).abs()
                    <= 1e-8);
            let a = extended.predict(&query);
            let b = fresh.predict(&query);
            prop_assert!((a.mean - b.mean).abs() <= 1e-8, "means {} vs {}", a.mean, b.mean);
            prop_assert!((a.variance - b.variance).abs() <= 1e-8);
        }

        #[test]
        fn jitter_escalation_factors_degenerate_gram_matrices(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 2), 1..6),
            dups in 1usize..4,
        ) {
            // Exact duplicates make the Gram matrix singular: the plain
            // factorization must fail cleanly and the jitter schedule
            // must rescue it — never a panic, never a NaN in the factor.
            let mut all = pts.clone();
            for d in 0..dups {
                all.push(pts[d % pts.len()].clone());
            }
            let kernel = Kernel::new(KernelFamily::SquaredExp, 2);
            let gram = kernel.gram(&all);
            let (chol, jitter) = Cholesky::factor_with_jitter(&gram, 0.0, 12)
                .expect("jitter escalation rescues a singular PSD Gram");
            prop_assert!(jitter.is_finite());
            let rhs = vec![1.0; all.len()];
            prop_assert!(chol.solve_vec(&rhs).iter().all(|v| v.is_finite()));
        }

        #[test]
        fn extend_with_duplicate_and_clustered_points_stays_finite(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 2), 3..10),
            dup_index in 0usize..10,
            nudge in 0.0f64..1e-9,
            query in proptest::collection::vec(0.0f64..=1.0, 2),
        ) {
            // Appending an (almost-)exact copy of a training point drives
            // the incremental factor update toward a non-positive pivot;
            // `extend` must fall back to a jittered refit and keep every
            // prediction finite rather than panic or poison the factor.
            let ys: Vec<f64> = pts.iter().map(|p| (5.0 * p[0]).sin() + p[1]).collect();
            let gp = GaussianProcess::fit(
                Kernel::new(KernelFamily::Matern52, 2), pts.clone(), ys.clone(), 1e-6).unwrap();
            let src = &pts[dup_index % pts.len()];
            let clustered = vec![
                src.clone(),
                vec![src[0] + nudge, src[1]],
                vec![src[0], src[1] + nudge],
            ];
            let y_new = vec![ys[dup_index % pts.len()]; 3];
            let extended = gp.extend(&clustered, &y_new)
                .expect("refit fallback absorbs duplicate points");
            let p = extended.predict(&query);
            prop_assert!(p.mean.is_finite());
            prop_assert!(p.variance.is_finite());
            prop_assert!(p.variance >= 0.0);
            prop_assert!(extended.log_marginal_likelihood().is_finite());
        }
    }
}
