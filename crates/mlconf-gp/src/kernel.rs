//! Covariance kernels with ARD (per-dimension) lengthscales.
//!
//! All kernels are stationary and operate on points in the unit hypercube
//! produced by `mlconf-space` encodings. Hyperparameters are exposed in
//! log space (`[ln signal_variance, ln ℓ₁, …, ln ℓ_d]`) so the marginal-
//! likelihood optimizer can search an unconstrained box.

use serde::{Deserialize, Serialize};

/// The kernel family.
///
/// Matérn 5/2 is the default for configuration tuning (CherryPick's
/// choice): it is rough enough to model performance cliffs yet smooth
/// enough for stable interpolation. The squared-exponential and Matérn 3/2
/// variants exist for the E5 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelFamily {
    /// Squared-exponential (RBF): infinitely smooth.
    SquaredExp,
    /// Matérn ν = 3/2: once differentiable.
    Matern32,
    /// Matérn ν = 5/2: twice differentiable.
    Matern52,
}

impl KernelFamily {
    /// All families, for ablation sweeps.
    pub fn all() -> [KernelFamily; 3] {
        [
            KernelFamily::SquaredExp,
            KernelFamily::Matern32,
            KernelFamily::Matern52,
        ]
    }

    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            KernelFamily::SquaredExp => "se",
            KernelFamily::Matern32 => "matern32",
            KernelFamily::Matern52 => "matern52",
        }
    }
}

impl std::fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A stationary ARD kernel: `k(a, b) = σ² · g(r)` where
/// `r² = Σ ((aᵢ−bᵢ)/ℓᵢ)²` and `g` depends on the family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    family: KernelFamily,
    signal_variance: f64,
    lengthscales: Vec<f64>,
}

impl Kernel {
    /// Creates a kernel with unit signal variance and all lengthscales
    /// set to `0.5` (half the unit cube), a sensible default prior for
    /// encoded configuration spaces.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(family: KernelFamily, dims: usize) -> Self {
        assert!(dims > 0, "kernel needs at least one dimension");
        Kernel {
            family,
            signal_variance: 1.0,
            lengthscales: vec![0.5; dims],
        }
    }

    /// Creates a kernel with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `signal_variance <= 0`, `lengthscales` is empty, or any
    /// lengthscale is non-positive.
    pub fn with_params(family: KernelFamily, signal_variance: f64, lengthscales: Vec<f64>) -> Self {
        assert!(
            signal_variance > 0.0 && signal_variance.is_finite(),
            "signal variance must be positive, got {signal_variance}"
        );
        assert!(!lengthscales.is_empty(), "lengthscales must be non-empty");
        for &l in &lengthscales {
            assert!(
                l > 0.0 && l.is_finite(),
                "lengthscale must be positive, got {l}"
            );
        }
        Kernel {
            family,
            signal_variance,
            lengthscales,
        }
    }

    /// The kernel family.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Input dimensionality.
    pub fn dims(&self) -> usize {
        self.lengthscales.len()
    }

    /// The signal variance σ².
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }

    /// Per-dimension lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` do not match the kernel's dimensionality.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        crate::ops::add_kernel_evals(1);
        self.eval_uncounted(a, b)
    }

    /// `eval` without touching the per-thread operation counter; batched
    /// call sites ([`Kernel::gram`], [`Kernel::cross_into`]) account for
    /// a whole batch with one counter bump instead.
    fn eval_uncounted(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.dims(), "kernel input dim mismatch");
        assert_eq!(b.len(), self.dims(), "kernel input dim mismatch");
        let mut r2 = 0.0;
        for ((&x, &y), &l) in a.iter().zip(b).zip(&self.lengthscales) {
            let d = (x - y) / l;
            r2 += d * d;
        }
        self.signal_variance * self.shape(r2)
    }

    /// The radial profile `g(r²)` with `g(0) = 1`.
    ///
    /// Crate-visible so [`crate::workspace::DistanceWorkspace`] can
    /// recombine cached squared distances without re-touching the inputs.
    pub(crate) fn shape(&self, r2: f64) -> f64 {
        match self.family {
            KernelFamily::SquaredExp => (-0.5 * r2).exp(),
            KernelFamily::Matern32 => {
                let r = r2.sqrt();
                let t = 3.0f64.sqrt() * r;
                (1.0 + t) * (-t).exp()
            }
            KernelFamily::Matern52 => {
                let r = r2.sqrt();
                let t = 5.0f64.sqrt() * r;
                (1.0 + t + t * t / 3.0) * (-t).exp()
            }
        }
    }

    /// Number of hyperparameters (`1 + dims`).
    pub fn n_params(&self) -> usize {
        1 + self.dims()
    }

    /// Hyperparameters in log space: `[ln σ², ln ℓ₁, …, ln ℓ_d]`.
    pub fn log_params(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.n_params());
        p.push(self.signal_variance.ln());
        p.extend(self.lengthscales.iter().map(|l| l.ln()));
        p
    }

    /// Replaces the hyperparameters from a log-space vector.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != self.n_params()` or any entry is non-finite.
    pub fn set_log_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.n_params(), "hyperparameter count mismatch");
        for &v in p {
            assert!(v.is_finite(), "non-finite log hyperparameter {v}");
        }
        self.signal_variance = p[0].exp();
        for (l, &lp) in self.lengthscales.iter_mut().zip(&p[1..]) {
            *l = lp.exp();
        }
    }

    /// Builds the Gram matrix `K(X, X)` for a set of rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the kernel dimensionality.
    pub fn gram(&self, xs: &[Vec<f64>]) -> mlconf_util::matrix::Matrix {
        let n = xs.len();
        crate::ops::add_kernel_evals((n as u64 * (n as u64 + 1)) / 2);
        let mut k = mlconf_util::matrix::Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = self.eval_uncounted(&xs[i], &xs[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// Evaluates the cross-covariance vector `k(X, x*)`.
    pub fn cross(&self, xs: &[Vec<f64>], x_star: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; xs.len()];
        self.cross_into(xs, x_star, &mut out);
        out
    }

    /// Writes the cross-covariance vector `k(X, x*)` into `out`,
    /// avoiding a fresh allocation per posterior query.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != xs.len()`.
    pub fn cross_into(&self, xs: &[Vec<f64>], x_star: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), xs.len(), "cross_into output length mismatch");
        crate::ops::add_kernel_evals(xs.len() as u64);
        for (o, x) in out.iter_mut().zip(xs) {
            *o = self.eval_uncounted(x, x_star);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_is_signal_variance() {
        for fam in KernelFamily::all() {
            let k = Kernel::with_params(fam, 2.5, vec![0.3, 0.7]);
            let x = [0.2, 0.9];
            assert!((k.eval(&x, &x) - 2.5).abs() < 1e-12, "{fam}");
        }
    }

    #[test]
    fn symmetry() {
        for fam in KernelFamily::all() {
            let k = Kernel::new(fam, 3);
            let a = [0.1, 0.5, 0.9];
            let b = [0.7, 0.2, 0.3];
            assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        }
    }

    #[test]
    fn decay_with_distance() {
        for fam in KernelFamily::all() {
            let k = Kernel::new(fam, 1);
            let near = k.eval(&[0.0], &[0.1]);
            let far = k.eval(&[0.0], &[0.9]);
            assert!(near > far, "{fam}: {near} !> {far}");
            assert!(far > 0.0);
        }
    }

    #[test]
    fn smoothness_ordering_at_small_distance() {
        // Near r=0, SE decays slowest in curvature; Matérn 3/2 is the
        // roughest. At a moderate distance the rough kernels retain more
        // correlation in their tails — just pin an exact known value.
        let se = Kernel::new(KernelFamily::SquaredExp, 1);
        let r: f64 = 0.5;
        let want = (-0.5 * (r / 0.5f64).powi(2)).exp();
        assert!((se.eval(&[0.0], &[r]) - want).abs() < 1e-12);
    }

    #[test]
    fn matern_known_values() {
        // At t = sqrt(3)*r/l = 1: k = 2/e for Matérn 3/2.
        let k = Kernel::with_params(KernelFamily::Matern32, 1.0, vec![1.0]);
        let r = 1.0 / 3.0f64.sqrt();
        let want = 2.0 * (-1.0f64).exp();
        assert!((k.eval(&[0.0], &[r]) - want).abs() < 1e-12);
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        let k = Kernel::with_params(KernelFamily::Matern52, 1.0, vec![0.1, 10.0]);
        // Same offset along a short-lengthscale dim decays much more.
        let along_first = k.eval(&[0.0, 0.0], &[0.2, 0.0]);
        let along_second = k.eval(&[0.0, 0.0], &[0.0, 0.2]);
        assert!(along_first < along_second);
    }

    #[test]
    fn log_params_roundtrip() {
        let mut k = Kernel::with_params(KernelFamily::SquaredExp, 3.0, vec![0.2, 0.8]);
        let p = k.log_params();
        assert_eq!(p.len(), 3);
        let mut k2 = Kernel::new(KernelFamily::SquaredExp, 2);
        k2.set_log_params(&p);
        assert!((k2.signal_variance() - 3.0).abs() < 1e-12);
        assert!((k2.lengthscales()[0] - 0.2).abs() < 1e-12);
        k.set_log_params(&[0.0, 0.0, 0.0]);
        assert_eq!(k.signal_variance(), 1.0);
    }

    #[test]
    fn gram_is_symmetric_with_unit_diag_scaled() {
        let k = Kernel::new(KernelFamily::Matern52, 2);
        let xs = vec![vec![0.1, 0.2], vec![0.5, 0.5], vec![0.9, 0.1]];
        let g = k.gram(&xs);
        for i in 0..3 {
            assert!((g[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn cross_matches_eval() {
        let k = Kernel::new(KernelFamily::SquaredExp, 2);
        let xs = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let c = k.cross(&xs, &[0.5, 0.5]);
        assert_eq!(c[0], k.eval(&[0.0, 0.0], &[0.5, 0.5]));
        assert_eq!(c[1], k.eval(&[1.0, 1.0], &[0.5, 0.5]));
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn eval_rejects_wrong_dims() {
        Kernel::new(KernelFamily::SquaredExp, 2).eval(&[0.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn with_params_rejects_zero_lengthscale() {
        Kernel::with_params(KernelFamily::SquaredExp, 1.0, vec![0.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn kernel_bounded_by_signal_variance(
            a in proptest::collection::vec(0.0f64..=1.0, 3),
            b in proptest::collection::vec(0.0f64..=1.0, 3),
            sv in 0.1f64..10.0,
        ) {
            for fam in KernelFamily::all() {
                let k = Kernel::with_params(fam, sv, vec![0.5, 0.5, 0.5]);
                let v = k.eval(&a, &b);
                prop_assert!(v > 0.0 && v <= sv + 1e-12);
            }
        }

        #[test]
        fn gram_is_positive_semidefinite(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, 2), 1..8),
        ) {
            use mlconf_util::linalg::Cholesky;
            for fam in KernelFamily::all() {
                let k = Kernel::new(fam, 2);
                let mut g = k.gram(&pts);
                g.add_diagonal(1e-8); // numerical PSD margin
                prop_assert!(Cholesky::factor(&g).is_ok(), "{fam} gram not PSD");
            }
        }
    }
}
