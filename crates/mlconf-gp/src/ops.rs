//! Deterministic kernel-evaluation accounting.
//!
//! Wall-clock benchmarks are noisy and machine-dependent; the number of
//! kernel evaluations a code path performs is neither. This module keeps
//! a **per-thread** counter that every kernel-evaluation site in the
//! crate bumps ([`Kernel::eval`](crate::Kernel::eval), batched
//! cross-covariance and Gram construction, and the hyperopt workspace's
//! Gram recombination), so tests and experiments can assert complexity
//! bounds — e.g. "sparse suggest at n = 10k costs O(n·m) kernel evals,
//! not O(n³)" — without ever reading a clock.
//!
//! The counter is thread-local on purpose: parallel test runners share a
//! process, and a global counter would be polluted by whatever other
//! tests happen to be fitting GPs concurrently. Callers that want a
//! meaningful reading keep the measured work on one thread (fit +
//! predict are single-threaded; acquisition maximization accepts an
//! explicit `threads = 1`).

use std::cell::Cell;

thread_local! {
    static KERNEL_EVALS: Cell<u64> = const { Cell::new(0) };
}

/// Adds `n` kernel evaluations to this thread's counter. Batched sites
/// (Gram, cross-covariance) call this once per batch rather than once
/// per entry so the accounting itself stays out of the hot loop.
pub(crate) fn add_kernel_evals(n: u64) {
    KERNEL_EVALS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Kernel evaluations recorded on the calling thread since the last
/// [`reset_kernel_evals`].
pub fn kernel_evals() -> u64 {
    KERNEL_EVALS.with(Cell::get)
}

/// Resets the calling thread's kernel-evaluation counter to zero.
pub fn reset_kernel_evals() {
    KERNEL_EVALS.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        reset_kernel_evals();
        assert_eq!(kernel_evals(), 0);
        add_kernel_evals(3);
        add_kernel_evals(4);
        assert_eq!(kernel_evals(), 7);
        reset_kernel_evals();
        assert_eq!(kernel_evals(), 0);
    }

    #[test]
    fn counter_is_thread_local() {
        reset_kernel_evals();
        add_kernel_evals(5);
        let other = std::thread::spawn(|| {
            add_kernel_evals(100);
            kernel_evals()
        })
        .join()
        .unwrap();
        assert_eq!(other, 100);
        assert_eq!(kernel_evals(), 5);
    }
}
