#![warn(missing_docs)]
//! Gaussian-process regression and acquisition functions for Bayesian
//! optimization, written from scratch on `mlconf-util`'s dense linear
//! algebra (the Rust BO ecosystem is too immature to depend on — the
//! point the paper's reproduction band makes).
//!
//! The three layers:
//!
//! 1. [`kernel`] — stationary ARD kernels (squared-exponential, Matérn 3/2
//!    and 5/2) over encoded configurations in the unit hypercube.
//! 2. [`gp`] — exact GP regression: Cholesky fit, posterior mean/variance,
//!    log marginal likelihood; [`hyperopt`] selects hyperparameters by
//!    maximizing the marginal likelihood.
//! 3. [`acquisition`] — EI / PI / LCB scores and a hybrid random +
//!    Nelder–Mead acquisition maximizer, generic over any [`surrogate`]
//!    implementation.
//!
//! For long histories, [`sparse`] bounds per-suggest cost with a
//! subset-of-data approximation behind the same [`surrogate::Surrogate`]
//! trait, and [`ops`] counts kernel evaluations so complexity bounds can
//! be asserted deterministically.
//!
//! # Examples
//!
//! ```
//! use mlconf_gp::kernel::{Kernel, KernelFamily};
//! use mlconf_gp::gp::GaussianProcess;
//! use mlconf_gp::acquisition::{maximize_acquisition, Acquisition};
//! use mlconf_util::rng::Pcg64;
//!
//! // Observed trials: objective has a minimum near x = 0.6.
//! let xs: Vec<Vec<f64>> = vec![vec![0.1], vec![0.4], vec![0.9]];
//! let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.6_f64).powi(2)).collect();
//! let gp = GaussianProcess::fit(Kernel::new(KernelFamily::Matern52, 1), xs, ys.clone(), 1e-6)?;
//!
//! let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
//! let mut rng = Pcg64::seed(0);
//! let next = maximize_acquisition(&gp, Acquisition::default_ei(), best, 1, 128, &[], &mut rng);
//! assert!((0.0..=1.0).contains(&next.point[0]));
//! # Ok::<(), mlconf_gp::gp::GpError>(())
//! ```

pub mod acquisition;
pub mod gp;
pub mod hyperopt;
pub mod kernel;
pub mod ops;
pub mod sparse;
pub mod surrogate;
pub mod workspace;

pub use acquisition::{
    maximize_acquisition, maximize_acquisition_threads, Acquisition, AcquisitionChoice,
};
pub use gp::{GaussianProcess, GpError, PredictWorkspace, Prediction};
pub use hyperopt::{fit_optimized, HyperoptOptions};
pub use kernel::{Kernel, KernelFamily};
pub use ops::{kernel_evals, reset_kernel_evals};
pub use sparse::{SparseConfig, SparseGaussianProcess};
pub use surrogate::Surrogate;
pub use workspace::DistanceWorkspace;
