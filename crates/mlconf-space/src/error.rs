//! Error type for configuration-space operations.

/// Error returned by configuration-space operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// A parameter name was not found in the space or configuration.
    UnknownParam {
        /// The missing name.
        name: String,
    },
    /// A parameter was declared twice.
    DuplicateParam {
        /// The repeated name.
        name: String,
    },
    /// Parameter bounds or choices were invalid.
    InvalidParam {
        /// The offending parameter.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A value had the wrong type for its parameter.
    TypeMismatch {
        /// The parameter being accessed.
        name: String,
        /// The type that was expected.
        expected: &'static str,
        /// The type that was found.
        found: &'static str,
    },
    /// A value was outside its parameter's domain.
    OutOfDomain {
        /// The parameter being set.
        name: String,
        /// Display form of the offending value.
        value: String,
    },
    /// An encoded vector had the wrong number of dimensions.
    DimensionMismatch {
        /// Dimensions expected by the space.
        expected: usize,
        /// Dimensions supplied.
        found: usize,
    },
    /// No feasible configuration was found within the sampling budget.
    NoFeasiblePoint {
        /// How many candidates were rejected.
        attempts: usize,
    },
    /// A constraint referenced a parameter that does not exist or has the
    /// wrong type.
    InvalidConstraint {
        /// Human-readable reason.
        reason: String,
    },
    /// The space is empty (no parameters).
    EmptySpace,
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::UnknownParam { name } => write!(f, "unknown parameter `{name}`"),
            SpaceError::DuplicateParam { name } => write!(f, "duplicate parameter `{name}`"),
            SpaceError::InvalidParam { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SpaceError::TypeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "parameter `{name}` expected {expected} value, found {found}"
            ),
            SpaceError::OutOfDomain { name, value } => {
                write!(f, "value {value} outside domain of parameter `{name}`")
            }
            SpaceError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected} dimensions, found {found}")
            }
            SpaceError::NoFeasiblePoint { attempts } => {
                write!(f, "no feasible configuration found in {attempts} attempts")
            }
            SpaceError::InvalidConstraint { reason } => write!(f, "invalid constraint: {reason}"),
            SpaceError::EmptySpace => write!(f, "configuration space has no parameters"),
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpaceError::UnknownParam {
            name: "workers".into(),
        };
        assert!(e.to_string().contains("workers"));
        let e = SpaceError::TypeMismatch {
            name: "batch".into(),
            expected: "int",
            found: "bool",
        };
        assert!(e.to_string().contains("int") && e.to_string().contains("bool"));
        let e = SpaceError::DimensionMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpaceError>();
    }
}
