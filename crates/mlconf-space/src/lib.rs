#![warn(missing_docs)]
//! Typed configuration spaces for distributed-ML tuning.
//!
//! A [`space::ConfigSpace`] declares the tunable knobs of a distributed
//! training job — integer ranges (optionally log-scaled), floats,
//! categorical choices, booleans — plus structural feasibility
//! [`constraint::Constraint`]s (e.g. *parameter servers < cluster nodes*).
//! The space provides a canonical bijective-up-to-rounding encoding into
//! the unit hypercube, which is what the Gaussian-process tuner models,
//! plus sampling, neighbourhood generation for local search, and grid
//! enumeration for the exhaustive-oracle baseline.
//!
//! # Examples
//!
//! ```
//! use mlconf_space::space::ConfigSpaceBuilder;
//! use mlconf_util::rng::Pcg64;
//!
//! let space = ConfigSpaceBuilder::new()
//!     .int("num_workers", 1, 32)?
//!     .log_int("batch_per_worker", 8, 2048)?
//!     .categorical("sync", ["bsp", "async", "ssp"])?
//!     .build()?;
//! let mut rng = Pcg64::seed(7);
//! let cfg = space.sample(&mut rng)?;
//! println!("proposed: {cfg}");
//! # Ok::<(), mlconf_space::error::SpaceError>(())
//! ```

pub mod config;
pub mod constraint;
pub mod error;
pub mod param;
pub mod space;

pub use config::Configuration;
pub use constraint::Constraint;
pub use error::SpaceError;
pub use param::{Param, ParamKind, ParamValue};
pub use space::{ConfigSpace, ConfigSpaceBuilder};
