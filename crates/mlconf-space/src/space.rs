//! The configuration space: an ordered set of typed parameters plus
//! feasibility constraints, with a canonical encoding into the unit
//! hypercube for model-based tuners.

use rand::Rng;

use crate::config::Configuration;
use crate::constraint::Constraint;
use crate::error::SpaceError;
use crate::param::{Param, ParamValue};

/// Default number of rejection-sampling attempts when drawing feasible
/// configurations.
const DEFAULT_SAMPLE_ATTEMPTS: usize = 10_000;

/// An ordered, constrained space of tunable parameters.
///
/// # Examples
///
/// ```
/// use mlconf_space::space::ConfigSpaceBuilder;
/// use mlconf_space::constraint::Constraint;
/// use mlconf_util::rng::Pcg64;
///
/// let space = ConfigSpaceBuilder::new()
///     .int("num_nodes", 2, 32)?
///     .int("num_ps", 1, 16)?
///     .log_int("batch_per_worker", 8, 1024)?
///     .categorical("arch", ["ps", "allreduce"])?
///     .constraint(Constraint::LtParam {
///         a: "num_ps".into(),
///         b: "num_nodes".into(),
///     })
///     .build()?;
///
/// let mut rng = Pcg64::seed(1);
/// let cfg = space.sample(&mut rng)?;
/// assert!(space.is_feasible(&cfg)?);
/// let encoded = space.encode(&cfg)?;
/// assert_eq!(encoded.len(), space.dims());
/// # Ok::<(), mlconf_space::error::SpaceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    params: Vec<Param>,
    constraints: Vec<Constraint>,
}

impl ConfigSpace {
    /// Creates a space from parameters and constraints.
    ///
    /// # Errors
    ///
    /// Returns an error if the space is empty, parameter names repeat, or
    /// a constraint references an unknown parameter.
    pub fn new(params: Vec<Param>, constraints: Vec<Constraint>) -> Result<Self, SpaceError> {
        if params.is_empty() {
            return Err(SpaceError::EmptySpace);
        }
        let mut seen = std::collections::HashSet::new();
        for p in &params {
            if !seen.insert(p.name().to_owned()) {
                return Err(SpaceError::DuplicateParam {
                    name: p.name().into(),
                });
            }
        }
        for c in &constraints {
            for name in c.referenced_params() {
                if !seen.contains(name) {
                    return Err(SpaceError::InvalidConstraint {
                        reason: format!(
                            "constraint `{}` references unknown parameter `{name}`",
                            c.describe()
                        ),
                    });
                }
            }
        }
        Ok(ConfigSpace {
            params,
            constraints,
        })
    }

    /// Number of dimensions in the unit-hypercube encoding (one per
    /// parameter).
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// The parameters, in declaration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name() == name)
    }

    /// Total number of distinct configurations, if every parameter domain
    /// is finite (saturating at `u128::MAX`). Constraints are *not*
    /// accounted for, so this is an upper bound on the feasible count.
    pub fn cardinality(&self) -> Option<u128> {
        let mut total: u128 = 1;
        for p in &self.params {
            let c = p.kind().cardinality()? as u128;
            total = total.saturating_mul(c);
        }
        Some(total)
    }

    /// Checks structural feasibility of a configuration against all
    /// constraints.
    ///
    /// # Errors
    ///
    /// Propagates constraint-evaluation errors (unknown parameter, type
    /// mismatch), which indicate the configuration was not produced by
    /// this space.
    pub fn is_feasible(&self, cfg: &Configuration) -> Result<bool, SpaceError> {
        for c in &self.constraints {
            if !c.is_satisfied(cfg)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Validates that `cfg` assigns every parameter of this space a value
    /// inside its domain (ignoring constraints).
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for the first violation found.
    pub fn validate(&self, cfg: &Configuration) -> Result<(), SpaceError> {
        if cfg.len() != self.params.len() {
            return Err(SpaceError::DimensionMismatch {
                expected: self.params.len(),
                found: cfg.len(),
            });
        }
        for (i, p) in self.params.iter().enumerate() {
            let v = cfg.value_at(i).ok_or_else(|| SpaceError::UnknownParam {
                name: p.name().into(),
            })?;
            if !p.contains(v) {
                return Err(SpaceError::OutOfDomain {
                    name: p.name().into(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Decodes a point in the unit hypercube into a configuration
    /// (ignoring constraints — see [`ConfigSpace::decode_feasible`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::DimensionMismatch`] for a wrong-length input.
    pub fn decode(&self, unit: &[f64]) -> Result<Configuration, SpaceError> {
        if unit.len() != self.params.len() {
            return Err(SpaceError::DimensionMismatch {
                expected: self.params.len(),
                found: unit.len(),
            });
        }
        Ok(Configuration::from_pairs(self.params.iter().zip(unit).map(
            |(p, &u)| (p.name().to_owned(), p.from_unit(u.clamp(0.0, 1.0))),
        )))
    }

    /// Encodes a configuration into the unit hypercube.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration does not match this space.
    pub fn encode(&self, cfg: &Configuration) -> Result<Vec<f64>, SpaceError> {
        if cfg.len() != self.params.len() {
            return Err(SpaceError::DimensionMismatch {
                expected: self.params.len(),
                found: cfg.len(),
            });
        }
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let v = cfg.value_at(i).ok_or_else(|| SpaceError::UnknownParam {
                    name: p.name().into(),
                })?;
                p.to_unit(v)
            })
            .collect()
    }

    /// Draws one feasible configuration uniformly (by rejection sampling
    /// over the box).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::NoFeasiblePoint`] if no feasible point is
    /// found within the attempt budget, which usually means the
    /// constraints are (nearly) unsatisfiable.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Configuration, SpaceError> {
        self.sample_with_attempts(rng, DEFAULT_SAMPLE_ATTEMPTS)
    }

    /// Like [`ConfigSpace::sample`] with an explicit attempt budget.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::NoFeasiblePoint`] when the budget is
    /// exhausted.
    pub fn sample_with_attempts<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        attempts: usize,
    ) -> Result<Configuration, SpaceError> {
        for _ in 0..attempts {
            let unit: Vec<f64> = (0..self.dims()).map(|_| rng.gen::<f64>()).collect();
            let cfg = self.decode(&unit)?;
            if self.is_feasible(&cfg)? {
                return Ok(cfg);
            }
        }
        Err(SpaceError::NoFeasiblePoint { attempts })
    }

    /// Decodes a unit point, then repairs infeasibility by local search:
    /// re-randomizes one coordinate at a time (seeded from the point
    /// itself) until the constraints hold.
    ///
    /// Model-based tuners optimize acquisition functions over the
    /// continuous box and need the chosen point mapped onto a *feasible*
    /// configuration near it.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::NoFeasiblePoint`] if repair fails within the
    /// attempt budget.
    pub fn decode_feasible<R: Rng + ?Sized>(
        &self,
        unit: &[f64],
        rng: &mut R,
    ) -> Result<Configuration, SpaceError> {
        let cfg = self.decode(unit)?;
        if self.is_feasible(&cfg)? {
            return Ok(cfg);
        }
        // Repair: perturb coordinates with growing radius.
        let mut point = unit.to_vec();
        let attempts = 2_000;
        for attempt in 0..attempts {
            let radius = 0.05 + 0.95 * (attempt as f64 / attempts as f64);
            let d = rng.gen_range(0..self.dims());
            let mut candidate = point.clone();
            let delta = rng.gen_range(-radius..radius);
            candidate[d] = (candidate[d] + delta).clamp(0.0, 1.0);
            let cfg = self.decode(&candidate)?;
            if self.is_feasible(&cfg)? {
                return Ok(cfg);
            }
            // Random walk so repeated failures explore.
            if attempt % 10 == 9 {
                point = candidate;
            }
        }
        Err(SpaceError::NoFeasiblePoint { attempts })
    }

    /// Generates the one-step neighbourhood of `cfg` for local-search
    /// tuners: ±1 step for ints (both linear and log treat a step as a
    /// multiplicative/additive unit through the encoding), ±5% of range
    /// for floats, every alternative category, and the flipped bool.
    ///
    /// Only feasible, in-domain neighbours distinct from `cfg` are
    /// returned.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` does not belong to this space.
    pub fn neighbors(&self, cfg: &Configuration) -> Result<Vec<Configuration>, SpaceError> {
        self.validate(cfg)?;
        let mut out = Vec::new();
        for (i, p) in self.params.iter().enumerate() {
            let current = cfg.value_at(i).expect("validated").clone();
            let candidates: Vec<ParamValue> = match p.kind() {
                crate::param::ParamKind::Int { lo, hi, log } => {
                    let v = current.as_int().expect("validated int");
                    if *log {
                        // A "step" in log space: ±25% with at-least-1 change.
                        let up = ((v as f64 * 1.25).round() as i64).max(v + 1).min(*hi);
                        let down = ((v as f64 / 1.25).round() as i64).min(v - 1).max(*lo);
                        vec![ParamValue::Int(up), ParamValue::Int(down)]
                    } else {
                        vec![
                            ParamValue::Int((v + 1).min(*hi)),
                            ParamValue::Int((v - 1).max(*lo)),
                        ]
                    }
                }
                crate::param::ParamKind::Float { lo, hi, .. } => {
                    let v = current.as_float().expect("validated float");
                    let step = 0.05 * (hi - lo);
                    vec![
                        ParamValue::Float((v + step).min(*hi)),
                        ParamValue::Float((v - step).max(*lo)),
                    ]
                }
                crate::param::ParamKind::Categorical { choices } => choices
                    .iter()
                    .filter(|c| Some(c.as_str()) != current.as_str())
                    .map(|c| ParamValue::Str(c.clone()))
                    .collect(),
                crate::param::ParamKind::Bool => {
                    vec![ParamValue::Bool(
                        !current.as_bool().expect("validated bool"),
                    )]
                }
            };
            for cand in candidates {
                if cand == current {
                    continue;
                }
                let mut n = cfg.clone();
                n.set(p.name(), cand)?;
                if self.is_feasible(&n)? {
                    out.push(n);
                }
            }
        }
        // De-duplicate (e.g. clamped int steps may coincide).
        out.sort_by_key(|c| c.key());
        out.dedup_by(|a, b| a.key() == b.key());
        Ok(out)
    }

    /// Enumerates a full-factorial grid: every value of finite parameters,
    /// `levels` values of continuous ones, filtered to feasible points.
    ///
    /// The caller must keep the cross product tractable; the method stops
    /// and returns what it has once `max_points` configurations have been
    /// generated (before feasibility filtering).
    pub fn grid(&self, levels: usize, max_points: usize) -> Vec<Configuration> {
        let per_param: Vec<Vec<ParamValue>> =
            self.params.iter().map(|p| p.enumerate(levels)).collect();
        let mut out = Vec::new();
        let mut indices = vec![0usize; per_param.len()];
        let mut generated = 0usize;
        'outer: loop {
            let cfg = Configuration::from_pairs(
                self.params
                    .iter()
                    .zip(&indices)
                    .map(|(p, &i)| (p.name().to_owned(), per_param[self.index_of(p)][i].clone())),
            );
            generated += 1;
            if self.is_feasible(&cfg).unwrap_or(false) {
                out.push(cfg);
            }
            if generated >= max_points {
                break;
            }
            // Odometer increment.
            for d in 0..indices.len() {
                indices[d] += 1;
                if indices[d] < per_param[d].len() {
                    continue 'outer;
                }
                indices[d] = 0;
            }
            break;
        }
        out
    }

    fn index_of(&self, p: &Param) -> usize {
        self.params
            .iter()
            .position(|q| q.name() == p.name())
            .expect("param comes from this space")
    }
}

/// Builder for [`ConfigSpace`] ([C-BUILDER]).
#[derive(Debug, Default)]
pub struct ConfigSpaceBuilder {
    params: Vec<Param>,
    constraints: Vec<Constraint>,
    error: Option<SpaceError>,
}

impl ConfigSpaceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-built parameter.
    pub fn param(mut self, param: Param) -> Self {
        self.params.push(param);
        self
    }

    /// Adds a linear integer parameter.
    ///
    /// # Errors
    ///
    /// Domain errors are deferred to [`ConfigSpaceBuilder::build`].
    pub fn int(self, name: &str, lo: i64, hi: i64) -> Result<Self, SpaceError> {
        Ok(self.param(Param::int(name, lo, hi)?))
    }

    /// Adds a log-scaled integer parameter.
    ///
    /// # Errors
    ///
    /// See [`ConfigSpaceBuilder::int`].
    pub fn log_int(self, name: &str, lo: i64, hi: i64) -> Result<Self, SpaceError> {
        Ok(self.param(Param::log_int(name, lo, hi)?))
    }

    /// Adds a linear float parameter.
    ///
    /// # Errors
    ///
    /// See [`ConfigSpaceBuilder::int`].
    pub fn float(self, name: &str, lo: f64, hi: f64) -> Result<Self, SpaceError> {
        Ok(self.param(Param::float(name, lo, hi)?))
    }

    /// Adds a log-scaled float parameter.
    ///
    /// # Errors
    ///
    /// See [`ConfigSpaceBuilder::int`].
    pub fn log_float(self, name: &str, lo: f64, hi: f64) -> Result<Self, SpaceError> {
        Ok(self.param(Param::log_float(name, lo, hi)?))
    }

    /// Adds a categorical parameter.
    ///
    /// # Errors
    ///
    /// See [`ConfigSpaceBuilder::int`].
    pub fn categorical<S: Into<String>>(
        self,
        name: &str,
        choices: impl IntoIterator<Item = S>,
    ) -> Result<Self, SpaceError> {
        Ok(self.param(Param::categorical(name, choices)?))
    }

    /// Adds a boolean parameter.
    ///
    /// # Errors
    ///
    /// See [`ConfigSpaceBuilder::int`].
    pub fn bool(self, name: &str) -> Result<Self, SpaceError> {
        Ok(self.param(Param::bool(name)?))
    }

    /// Adds a constraint.
    pub fn constraint(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Finalizes the space.
    ///
    /// # Errors
    ///
    /// See [`ConfigSpace::new`].
    pub fn build(self) -> Result<ConfigSpace, SpaceError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        ConfigSpace::new(self.params, self.constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlconf_util::rng::Pcg64;

    fn demo_space() -> ConfigSpace {
        ConfigSpaceBuilder::new()
            .int("num_nodes", 2, 16)
            .unwrap()
            .int("num_ps", 1, 8)
            .unwrap()
            .log_int("batch", 8, 1024)
            .unwrap()
            .float("momentum", 0.0, 1.0)
            .unwrap()
            .categorical("arch", ["ps", "allreduce"])
            .unwrap()
            .bool("compress")
            .unwrap()
            .constraint(Constraint::LtParam {
                a: "num_ps".into(),
                b: "num_nodes".into(),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn dims_and_lookup() {
        let s = demo_space();
        assert_eq!(s.dims(), 6);
        assert!(s.param("batch").is_some());
        assert!(s.param("nope").is_none());
    }

    #[test]
    fn rejects_duplicate_params() {
        let r = ConfigSpace::new(
            vec![
                Param::int("a", 0, 1).unwrap(),
                Param::int("a", 0, 1).unwrap(),
            ],
            vec![],
        );
        assert!(matches!(r, Err(SpaceError::DuplicateParam { .. })));
    }

    #[test]
    fn rejects_empty_space() {
        assert!(matches!(
            ConfigSpace::new(vec![], vec![]),
            Err(SpaceError::EmptySpace)
        ));
    }

    #[test]
    fn rejects_constraint_on_unknown_param() {
        let r = ConfigSpace::new(
            vec![Param::int("a", 0, 1).unwrap()],
            vec![Constraint::LtParam {
                a: "a".into(),
                b: "missing".into(),
            }],
        );
        assert!(matches!(r, Err(SpaceError::InvalidConstraint { .. })));
    }

    #[test]
    fn sample_is_feasible_and_in_domain() {
        let s = demo_space();
        let mut rng = Pcg64::seed(1);
        for _ in 0..200 {
            let cfg = s.sample(&mut rng).unwrap();
            s.validate(&cfg).unwrap();
            assert!(s.is_feasible(&cfg).unwrap());
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = demo_space();
        let mut rng = Pcg64::seed(2);
        for _ in 0..100 {
            let cfg = s.sample(&mut rng).unwrap();
            let enc = s.encode(&cfg).unwrap();
            assert_eq!(enc.len(), s.dims());
            let dec = s.decode(&enc).unwrap();
            assert_eq!(dec, cfg, "decode(encode(cfg)) != cfg");
        }
    }

    #[test]
    fn decode_wrong_dims_fails() {
        let s = demo_space();
        assert!(matches!(
            s.decode(&[0.5; 3]),
            Err(SpaceError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn decode_clamps_out_of_range_coordinates() {
        let s = demo_space();
        let cfg = s.decode(&[-0.5, 2.0, 0.5, 0.5, 0.5, 0.5]).unwrap();
        s.validate(&cfg).unwrap();
        assert_eq!(cfg.get_int("num_nodes").unwrap(), 2);
        assert_eq!(cfg.get_int("num_ps").unwrap(), 8);
    }

    #[test]
    fn decode_feasible_repairs_constraint_violation() {
        let s = demo_space();
        let mut rng = Pcg64::seed(3);
        // num_nodes at min (2), num_ps at max (8): violates ps < nodes.
        let unit = [0.0, 1.0, 0.5, 0.5, 0.5, 0.5];
        let cfg = s.decode_feasible(&unit, &mut rng).unwrap();
        assert!(s.is_feasible(&cfg).unwrap());
    }

    #[test]
    fn infeasible_space_sampling_errors() {
        let s = ConfigSpaceBuilder::new()
            .int("a", 0, 10)
            .unwrap()
            .constraint(Constraint::custom("never", |_| false))
            .build()
            .unwrap();
        let mut rng = Pcg64::seed(4);
        assert!(matches!(
            s.sample_with_attempts(&mut rng, 50),
            Err(SpaceError::NoFeasiblePoint { attempts: 50 })
        ));
    }

    #[test]
    fn neighbors_are_feasible_and_distinct() {
        let s = demo_space();
        let mut rng = Pcg64::seed(5);
        let cfg = s.sample(&mut rng).unwrap();
        let ns = s.neighbors(&cfg).unwrap();
        assert!(!ns.is_empty());
        for n in &ns {
            assert_ne!(n, &cfg);
            assert!(s.is_feasible(n).unwrap());
            s.validate(n).unwrap();
        }
        // No duplicates.
        let mut keys: Vec<String> = ns.iter().map(|n| n.key()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn neighbors_at_boundary_clamp() {
        let s = ConfigSpaceBuilder::new()
            .int("a", 0, 3)
            .unwrap()
            .build()
            .unwrap();
        let cfg = s.decode(&[0.0]).unwrap();
        assert_eq!(cfg.get_int("a").unwrap(), 0);
        let ns = s.neighbors(&cfg).unwrap();
        assert_eq!(ns.len(), 1);
        assert_eq!(ns[0].get_int("a").unwrap(), 1);
    }

    #[test]
    fn cardinality_counts_finite_spaces() {
        let s = ConfigSpaceBuilder::new()
            .int("a", 1, 4)
            .unwrap()
            .bool("b")
            .unwrap()
            .categorical("c", ["x", "y", "z"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(s.cardinality(), Some(4 * 2 * 3));
        assert_eq!(demo_space().cardinality(), None); // float param present
    }

    #[test]
    fn grid_covers_finite_space() {
        let s = ConfigSpaceBuilder::new()
            .int("a", 1, 3)
            .unwrap()
            .bool("b")
            .unwrap()
            .build()
            .unwrap();
        let g = s.grid(10, 1000);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn grid_respects_constraints_and_cap() {
        let s = ConfigSpaceBuilder::new()
            .int("a", 1, 10)
            .unwrap()
            .int("b", 1, 10)
            .unwrap()
            .constraint(Constraint::LtParam {
                a: "a".into(),
                b: "b".into(),
            })
            .build()
            .unwrap();
        let g = s.grid(10, 10_000);
        assert_eq!(g.len(), 45); // pairs with a < b
        let capped = s.grid(10, 10);
        assert!(capped.len() <= 10);
    }

    #[test]
    fn validate_rejects_foreign_configs() {
        let s = demo_space();
        let bad = Configuration::from_pairs([("x", ParamValue::Int(1))]);
        assert!(s.validate(&bad).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mlconf_util::rng::Pcg64;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn decode_always_validates(seed in 0u64..500, coords in proptest::collection::vec(0.0f64..=1.0, 6)) {
            let s = tests_space();
            let cfg = s.decode(&coords).unwrap();
            prop_assert!(s.validate(&cfg).is_ok());
            let _ = seed;
        }

        #[test]
        fn encode_of_decode_roundtrips(coords in proptest::collection::vec(0.0f64..=1.0, 6)) {
            let s = tests_space();
            let cfg = s.decode(&coords).unwrap();
            let enc = s.encode(&cfg).unwrap();
            let cfg2 = s.decode(&enc).unwrap();
            prop_assert_eq!(cfg, cfg2);
        }

        #[test]
        fn samples_always_feasible(seed in 0u64..200) {
            let s = tests_space();
            let mut rng = Pcg64::seed(seed);
            let cfg = s.sample(&mut rng).unwrap();
            prop_assert!(s.is_feasible(&cfg).unwrap());
        }
    }

    fn tests_space() -> ConfigSpace {
        ConfigSpaceBuilder::new()
            .int("num_nodes", 2, 16)
            .unwrap()
            .int("num_ps", 1, 8)
            .unwrap()
            .log_int("batch", 8, 1024)
            .unwrap()
            .float("momentum", 0.0, 1.0)
            .unwrap()
            .categorical("arch", ["ps", "allreduce"])
            .unwrap()
            .bool("compress")
            .unwrap()
            .constraint(Constraint::LtParam {
                a: "num_ps".into(),
                b: "num_nodes".into(),
            })
            .build()
            .unwrap()
    }
}
