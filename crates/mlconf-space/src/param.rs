//! Typed tunable parameters and their values.

use serde::{Deserialize, Serialize};

use crate::error::SpaceError;

/// A concrete value assigned to a parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Integer value (e.g. number of workers).
    Int(i64),
    /// Floating-point value (e.g. a rate or fraction).
    Float(f64),
    /// Categorical choice by name (e.g. machine type).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl ParamValue {
    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Str(_) => "categorical",
            ParamValue::Bool(_) => "bool",
        }
    }

    /// Returns the integer payload if this is an [`ParamValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload if this is a [`ParamValue::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload if this is a [`ParamValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`ParamValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_owned())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

/// The domain of a tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Integer range `[lo, hi]`, inclusive. With `log = true` the unit
    /// encoding is logarithmic (requires `lo >= 1`), appropriate for
    /// scale-like knobs such as batch size.
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Whether the unit-interval encoding is logarithmic.
        log: bool,
    },
    /// Floating-point range `[lo, hi]`. With `log = true` the encoding is
    /// logarithmic (requires `lo > 0`).
    Float {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
        /// Whether the unit-interval encoding is logarithmic.
        log: bool,
    },
    /// One of a fixed set of named choices.
    Categorical {
        /// The available choices, in declaration order.
        choices: Vec<String>,
    },
    /// A boolean flag.
    Bool,
}

impl ParamKind {
    /// Number of distinct values, if finite.
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            ParamKind::Int { lo, hi, .. } => Some((hi - lo) as u64 + 1),
            ParamKind::Float { lo, hi, .. } => {
                if lo == hi {
                    Some(1)
                } else {
                    None
                }
            }
            ParamKind::Categorical { choices } => Some(choices.len() as u64),
            ParamKind::Bool => Some(2),
        }
    }

    /// A short name for the kind, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamKind::Int { .. } => "int",
            ParamKind::Float { .. } => "float",
            ParamKind::Categorical { .. } => "categorical",
            ParamKind::Bool => "bool",
        }
    }
}

/// A named tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    name: String,
    kind: ParamKind,
}

impl Param {
    /// Creates a parameter, validating its domain.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::InvalidParam`] for empty names, inverted or
    /// non-finite bounds, log-scaled domains with non-positive lower
    /// bounds, or empty/duplicate categorical choices.
    pub fn new(name: impl Into<String>, kind: ParamKind) -> Result<Self, SpaceError> {
        let name = name.into();
        let invalid = |reason: String| SpaceError::InvalidParam {
            name: name.clone(),
            reason,
        };
        if name.is_empty() {
            return Err(SpaceError::InvalidParam {
                name,
                reason: "empty name".into(),
            });
        }
        match &kind {
            ParamKind::Int { lo, hi, log } => {
                if lo > hi {
                    return Err(invalid(format!("int bounds inverted: [{lo}, {hi}]")));
                }
                if *log && *lo < 1 {
                    return Err(invalid(format!(
                        "log-scaled int requires lo >= 1, got {lo}"
                    )));
                }
            }
            ParamKind::Float { lo, hi, log } => {
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(invalid(format!("non-finite float bounds [{lo}, {hi}]")));
                }
                if lo > hi {
                    return Err(invalid(format!("float bounds inverted: [{lo}, {hi}]")));
                }
                if *log && *lo <= 0.0 {
                    return Err(invalid(format!(
                        "log-scaled float requires lo > 0, got {lo}"
                    )));
                }
            }
            ParamKind::Categorical { choices } => {
                if choices.is_empty() {
                    return Err(invalid("categorical with no choices".into()));
                }
                let mut seen = std::collections::HashSet::new();
                for c in choices {
                    if !seen.insert(c) {
                        return Err(invalid(format!("duplicate choice `{c}`")));
                    }
                }
            }
            ParamKind::Bool => {}
        }
        Ok(Param { name, kind })
    }

    /// Convenience constructor for a linear integer range.
    ///
    /// # Errors
    ///
    /// See [`Param::new`].
    pub fn int(name: impl Into<String>, lo: i64, hi: i64) -> Result<Self, SpaceError> {
        Param::new(name, ParamKind::Int { lo, hi, log: false })
    }

    /// Convenience constructor for a log-scaled integer range.
    ///
    /// # Errors
    ///
    /// See [`Param::new`].
    pub fn log_int(name: impl Into<String>, lo: i64, hi: i64) -> Result<Self, SpaceError> {
        Param::new(name, ParamKind::Int { lo, hi, log: true })
    }

    /// Convenience constructor for a linear float range.
    ///
    /// # Errors
    ///
    /// See [`Param::new`].
    pub fn float(name: impl Into<String>, lo: f64, hi: f64) -> Result<Self, SpaceError> {
        Param::new(name, ParamKind::Float { lo, hi, log: false })
    }

    /// Convenience constructor for a log-scaled float range.
    ///
    /// # Errors
    ///
    /// See [`Param::new`].
    pub fn log_float(name: impl Into<String>, lo: f64, hi: f64) -> Result<Self, SpaceError> {
        Param::new(name, ParamKind::Float { lo, hi, log: true })
    }

    /// Convenience constructor for a categorical parameter.
    ///
    /// # Errors
    ///
    /// See [`Param::new`].
    pub fn categorical<S: Into<String>>(
        name: impl Into<String>,
        choices: impl IntoIterator<Item = S>,
    ) -> Result<Self, SpaceError> {
        Param::new(
            name,
            ParamKind::Categorical {
                choices: choices.into_iter().map(Into::into).collect(),
            },
        )
    }

    /// Convenience constructor for a boolean parameter.
    ///
    /// # Errors
    ///
    /// See [`Param::new`].
    pub fn bool(name: impl Into<String>) -> Result<Self, SpaceError> {
        Param::new(name, ParamKind::Bool)
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's domain.
    pub fn kind(&self) -> &ParamKind {
        &self.kind
    }

    /// Checks whether `value` lies in this parameter's domain.
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (&self.kind, value) {
            (ParamKind::Int { lo, hi, .. }, ParamValue::Int(v)) => lo <= v && v <= hi,
            (ParamKind::Float { lo, hi, .. }, ParamValue::Float(v)) => {
                v.is_finite() && *lo <= *v && *v <= *hi
            }
            (ParamKind::Categorical { choices }, ParamValue::Str(v)) => {
                choices.iter().any(|c| c == v)
            }
            (ParamKind::Bool, ParamValue::Bool(_)) => true,
            _ => false,
        }
    }

    /// Maps a unit-interval coordinate to a value in this domain.
    ///
    /// The mapping is surjective onto the domain and is the inverse of
    /// [`Param::to_unit`] up to rounding.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `u` is outside `[0, 1]` (release builds
    /// clamp).
    pub fn from_unit(&self, u: f64) -> ParamValue {
        debug_assert!((-1e-9..=1.0 + 1e-9).contains(&u), "unit coord {u}");
        let u = u.clamp(0.0, 1.0);
        match &self.kind {
            ParamKind::Int { lo, hi, log } => {
                if lo == hi {
                    return ParamValue::Int(*lo);
                }
                let v = if *log {
                    let (llo, lhi) = ((*lo as f64).ln(), (*hi as f64).ln());
                    (llo + u * (lhi - llo)).exp().round() as i64
                } else {
                    *lo + (u * ((*hi - *lo) as f64 + 1.0)).floor() as i64
                };
                ParamValue::Int(v.clamp(*lo, *hi))
            }
            ParamKind::Float { lo, hi, log } => {
                if lo == hi {
                    return ParamValue::Float(*lo);
                }
                let v = if *log {
                    let (llo, lhi) = (lo.ln(), hi.ln());
                    (llo + u * (lhi - llo)).exp()
                } else {
                    lo + u * (hi - lo)
                };
                ParamValue::Float(v.clamp(*lo, *hi))
            }
            ParamKind::Categorical { choices } => {
                let k = choices.len();
                let idx = ((u * k as f64).floor() as usize).min(k - 1);
                ParamValue::Str(choices[idx].clone())
            }
            ParamKind::Bool => ParamValue::Bool(u >= 0.5),
        }
    }

    /// Maps a domain value to its canonical unit-interval coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::TypeMismatch`] or [`SpaceError::OutOfDomain`]
    /// if the value does not belong to this parameter.
    pub fn to_unit(&self, value: &ParamValue) -> Result<f64, SpaceError> {
        if !self.contains(value) {
            return Err(match (&self.kind, value) {
                (k, v) if k.type_name() != v.type_name() => SpaceError::TypeMismatch {
                    name: self.name.clone(),
                    expected: k.type_name(),
                    found: v.type_name(),
                },
                _ => SpaceError::OutOfDomain {
                    name: self.name.clone(),
                    value: value.to_string(),
                },
            });
        }
        Ok(match (&self.kind, value) {
            (ParamKind::Int { lo, hi, log }, ParamValue::Int(v)) => {
                if lo == hi {
                    0.5
                } else if *log {
                    let (llo, lhi) = ((*lo as f64).ln(), (*hi as f64).ln());
                    ((*v as f64).ln() - llo) / (lhi - llo)
                } else {
                    // Centre of the value's bucket, so decode(encode(v)) == v.
                    ((*v - *lo) as f64 + 0.5) / ((*hi - *lo) as f64 + 1.0)
                }
            }
            (ParamKind::Float { lo, hi, log }, ParamValue::Float(v)) => {
                if lo == hi {
                    0.5
                } else if *log {
                    (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
                } else {
                    (v - lo) / (hi - lo)
                }
            }
            (ParamKind::Categorical { choices }, ParamValue::Str(v)) => {
                let idx = choices
                    .iter()
                    .position(|c| c == v)
                    .expect("contains() checked membership");
                (idx as f64 + 0.5) / choices.len() as f64
            }
            (ParamKind::Bool, ParamValue::Bool(v)) => {
                if *v {
                    0.75
                } else {
                    0.25
                }
            }
            _ => unreachable!("contains() checked the type"),
        })
    }

    /// Parses a string into a value of this parameter's type and checks
    /// it against the domain (the inverse of `ParamValue`'s `Display`).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::OutOfDomain`] when the text does not parse
    /// as the parameter's type or the parsed value is outside the domain.
    pub fn parse_value(&self, text: &str) -> Result<ParamValue, SpaceError> {
        let out_of_domain = || SpaceError::OutOfDomain {
            name: self.name.clone(),
            value: text.to_owned(),
        };
        let value = match &self.kind {
            ParamKind::Int { .. } => ParamValue::Int(text.parse().map_err(|_| out_of_domain())?),
            ParamKind::Float { .. } => {
                ParamValue::Float(text.parse().map_err(|_| out_of_domain())?)
            }
            ParamKind::Categorical { .. } => ParamValue::Str(text.to_owned()),
            ParamKind::Bool => ParamValue::Bool(text.parse().map_err(|_| out_of_domain())?),
        };
        if !self.contains(&value) {
            return Err(out_of_domain());
        }
        Ok(value)
    }

    /// Enumerates every value in a finite domain; for a continuous float
    /// range, returns `levels` evenly spaced values instead.
    pub fn enumerate(&self, levels: usize) -> Vec<ParamValue> {
        match &self.kind {
            ParamKind::Int { lo, hi, .. } => {
                let count = (*hi - *lo) as usize + 1;
                if count <= levels.max(2) {
                    (*lo..=*hi).map(ParamValue::Int).collect()
                } else {
                    // Sample `levels` distinct values across the range
                    // through the unit encoding (respects log scaling).
                    let mut vals: Vec<i64> = (0..levels)
                        .map(|i| {
                            let u = (i as f64 + 0.5) / levels as f64;
                            self.from_unit(u).as_int().expect("int kind")
                        })
                        .collect();
                    vals.dedup();
                    vals.into_iter().map(ParamValue::Int).collect()
                }
            }
            ParamKind::Float { lo, hi, .. } => {
                if lo == hi {
                    vec![ParamValue::Float(*lo)]
                } else {
                    (0..levels.max(2))
                        .map(|i| {
                            let u = (i as f64 + 0.5) / levels.max(2) as f64;
                            self.from_unit(u)
                        })
                        .collect()
                }
            }
            ParamKind::Categorical { choices } => {
                choices.iter().cloned().map(ParamValue::Str).collect()
            }
            ParamKind::Bool => vec![ParamValue::Bool(false), ParamValue::Bool(true)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_all_values() {
        let p = Param::int("workers", 2, 17).unwrap();
        for v in 2..=17 {
            let u = p.to_unit(&ParamValue::Int(v)).unwrap();
            assert_eq!(p.from_unit(u), ParamValue::Int(v), "v={v}");
        }
    }

    #[test]
    fn log_int_roundtrip() {
        let p = Param::log_int("batch", 8, 4096).unwrap();
        for v in [8i64, 16, 64, 512, 4096] {
            let u = p.to_unit(&ParamValue::Int(v)).unwrap();
            assert_eq!(p.from_unit(u), ParamValue::Int(v), "v={v}");
        }
    }

    #[test]
    fn log_int_encoding_is_nonlinear() {
        let p = Param::log_int("batch", 1, 1024).unwrap();
        let u32_ = p.to_unit(&ParamValue::Int(32)).unwrap();
        // 32 = 2^5 of 2^10 → exactly half way in log space.
        assert!((u32_ - 0.5).abs() < 1e-12);
    }

    #[test]
    fn float_roundtrip() {
        let p = Param::float("rate", 0.0, 10.0).unwrap();
        let u = p.to_unit(&ParamValue::Float(2.5)).unwrap();
        assert!((u - 0.25).abs() < 1e-12);
        assert_eq!(p.from_unit(u), ParamValue::Float(2.5));
    }

    #[test]
    fn log_float_midpoint() {
        let p = Param::log_float("lr", 1e-4, 1e-1).unwrap();
        let v = p.from_unit(0.5).as_float().unwrap();
        // Geometric midpoint: sqrt(1e-4 * 1e-1) ≈ 3.16e-3.
        assert!((v - 3.162e-3).abs() < 1e-4, "v = {v}");
    }

    #[test]
    fn categorical_roundtrip_and_buckets() {
        let p = Param::categorical("arch", ["ps", "allreduce"]).unwrap();
        assert_eq!(p.from_unit(0.0), ParamValue::Str("ps".into()));
        assert_eq!(p.from_unit(0.49), ParamValue::Str("ps".into()));
        assert_eq!(p.from_unit(0.51), ParamValue::Str("allreduce".into()));
        assert_eq!(p.from_unit(1.0), ParamValue::Str("allreduce".into()));
        let u = p.to_unit(&ParamValue::Str("allreduce".into())).unwrap();
        assert_eq!(p.from_unit(u), ParamValue::Str("allreduce".into()));
    }

    #[test]
    fn bool_roundtrip() {
        let p = Param::bool("pipelining").unwrap();
        for v in [true, false] {
            let u = p.to_unit(&ParamValue::Bool(v)).unwrap();
            assert_eq!(p.from_unit(u), ParamValue::Bool(v));
        }
    }

    #[test]
    fn degenerate_ranges() {
        let p = Param::int("n", 5, 5).unwrap();
        assert_eq!(p.from_unit(0.9), ParamValue::Int(5));
        assert_eq!(p.to_unit(&ParamValue::Int(5)).unwrap(), 0.5);
        let p = Param::float("x", 1.0, 1.0).unwrap();
        assert_eq!(p.from_unit(0.1), ParamValue::Float(1.0));
    }

    #[test]
    fn validation_rejects_bad_domains() {
        assert!(Param::int("a", 5, 2).is_err());
        assert!(Param::log_int("a", 0, 10).is_err());
        assert!(Param::float("a", f64::NAN, 1.0).is_err());
        assert!(Param::log_float("a", 0.0, 1.0).is_err());
        assert!(Param::categorical("a", Vec::<String>::new()).is_err());
        assert!(Param::categorical("a", ["x", "x"]).is_err());
        assert!(Param::new("", ParamKind::Bool).is_err());
    }

    #[test]
    fn contains_checks_domain_and_type() {
        let p = Param::int("n", 0, 10).unwrap();
        assert!(p.contains(&ParamValue::Int(10)));
        assert!(!p.contains(&ParamValue::Int(11)));
        assert!(!p.contains(&ParamValue::Float(5.0)));
        let p = Param::float("x", 0.0, 1.0).unwrap();
        assert!(!p.contains(&ParamValue::Float(f64::NAN)));
    }

    #[test]
    fn to_unit_error_kinds() {
        let p = Param::int("n", 0, 10).unwrap();
        assert!(matches!(
            p.to_unit(&ParamValue::Bool(true)),
            Err(SpaceError::TypeMismatch { .. })
        ));
        assert!(matches!(
            p.to_unit(&ParamValue::Int(99)),
            Err(SpaceError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn enumerate_small_int_is_exhaustive() {
        let p = Param::int("n", 3, 6).unwrap();
        let vals = p.enumerate(10);
        assert_eq!(
            vals,
            vec![
                ParamValue::Int(3),
                ParamValue::Int(4),
                ParamValue::Int(5),
                ParamValue::Int(6)
            ]
        );
    }

    #[test]
    fn enumerate_large_int_subsamples() {
        let p = Param::int("n", 0, 1000).unwrap();
        let vals = p.enumerate(5);
        assert!(vals.len() <= 5);
        assert!(vals.windows(2).all(|w| w[0].as_int() < w[1].as_int()));
    }

    #[test]
    fn enumerate_float_has_levels() {
        let p = Param::float("x", 0.0, 1.0).unwrap();
        assert_eq!(p.enumerate(4).len(), 4);
    }

    #[test]
    fn cardinality() {
        assert_eq!(
            Param::int("n", 1, 10).unwrap().kind().cardinality(),
            Some(10)
        );
        assert_eq!(
            Param::float("x", 0.0, 1.0).unwrap().kind().cardinality(),
            None
        );
        assert_eq!(Param::bool("b").unwrap().kind().cardinality(), Some(2));
    }

    #[test]
    fn parse_value_roundtrips_display() {
        let cases: Vec<(Param, ParamValue)> = vec![
            (Param::int("n", 0, 100).unwrap(), ParamValue::Int(42)),
            (
                Param::float("x", 0.0, 1.0).unwrap(),
                ParamValue::Float(0.25),
            ),
            (
                Param::categorical("c", ["a", "b"]).unwrap(),
                ParamValue::Str("b".into()),
            ),
            (Param::bool("f").unwrap(), ParamValue::Bool(true)),
        ];
        for (p, v) in cases {
            let text = v.to_string();
            assert_eq!(p.parse_value(&text).unwrap(), v, "{}", p.name());
        }
    }

    #[test]
    fn parse_value_rejects_garbage_and_out_of_domain() {
        let p = Param::int("n", 0, 10).unwrap();
        assert!(p.parse_value("abc").is_err());
        assert!(p.parse_value("99").is_err());
        let c = Param::categorical("c", ["a"]).unwrap();
        assert!(c.parse_value("zzz").is_err());
        let b = Param::bool("f").unwrap();
        assert!(b.parse_value("yes").is_err());
    }

    #[test]
    fn param_value_conversions() {
        assert_eq!(ParamValue::from(3i64), ParamValue::Int(3));
        assert_eq!(ParamValue::from(true).as_bool(), Some(true));
        assert_eq!(ParamValue::from("x").as_str(), Some("x"));
        assert_eq!(ParamValue::from(1.5).as_float(), Some(1.5));
        assert_eq!(ParamValue::Int(3).as_float(), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn int_decode_encode_decode_is_identity(
            lo in -50i64..50, span in 0i64..100, u in 0.0f64..=1.0
        ) {
            let p = Param::int("n", lo, lo + span).unwrap();
            let v = p.from_unit(u);
            let u2 = p.to_unit(&v).unwrap();
            prop_assert_eq!(p.from_unit(u2), v);
        }

        #[test]
        fn log_int_decode_encode_decode_is_identity(
            lo in 1i64..100, span in 0i64..10_000, u in 0.0f64..=1.0
        ) {
            let p = Param::log_int("n", lo, lo + span).unwrap();
            let v = p.from_unit(u);
            let u2 = p.to_unit(&v).unwrap();
            prop_assert_eq!(p.from_unit(u2), v);
        }

        #[test]
        fn float_roundtrip_within_tolerance(
            lo in -100.0f64..100.0, span in 0.001f64..100.0, u in 0.0f64..=1.0
        ) {
            let p = Param::float("x", lo, lo + span).unwrap();
            let v = p.from_unit(u).as_float().unwrap();
            let u2 = p.to_unit(&ParamValue::Float(v)).unwrap();
            prop_assert!((u - u2).abs() < 1e-9);
        }

        #[test]
        fn from_unit_always_in_domain(u in 0.0f64..=1.0, lo in 1i64..20, span in 0i64..50) {
            let p = Param::log_int("n", lo, lo + span).unwrap();
            prop_assert!(p.contains(&p.from_unit(u)));
            let q = Param::int("m", -5, 5).unwrap();
            prop_assert!(q.contains(&q.from_unit(u)));
        }
    }
}
