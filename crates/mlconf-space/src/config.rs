//! A concrete configuration: an assignment of values to every parameter of
//! a space, in the space's declaration order.

use serde::{Deserialize, Serialize};

use crate::error::SpaceError;
use crate::param::ParamValue;

/// An ordered assignment of values to named parameters.
///
/// Order always matches the declaring [`ConfigSpace`](crate::space::ConfigSpace)'s
/// parameter order, so two configurations from the same space can be
/// compared entry-wise.
///
/// # Examples
///
/// ```
/// use mlconf_space::config::Configuration;
///
/// let cfg = Configuration::from_pairs([
///     ("num_workers", 8i64.into()),
///     ("arch", "ps".into()),
/// ]);
/// assert_eq!(cfg.get_int("num_workers")?, 8);
/// assert_eq!(cfg.get_str("arch")?, "ps");
/// # Ok::<(), mlconf_space::error::SpaceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    entries: Vec<(String, ParamValue)>,
}

impl Configuration {
    /// Creates a configuration from `(name, value)` pairs in order.
    pub fn from_pairs<N: Into<String>>(pairs: impl IntoIterator<Item = (N, ParamValue)>) -> Self {
        Configuration {
            entries: pairs.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// Number of parameters assigned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no parameters are assigned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a value by parameter name.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Returns the value at position `idx` (the space's parameter order).
    pub fn value_at(&self, idx: usize) -> Option<&ParamValue> {
        self.entries.get(idx).map(|(_, v)| v)
    }

    /// Replaces the value for `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] if `name` is not present.
    pub fn set(&mut self, name: &str, value: ParamValue) -> Result<(), SpaceError> {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => {
                *v = value;
                Ok(())
            }
            None => Err(SpaceError::UnknownParam { name: name.into() }),
        }
    }

    /// Typed accessor for an integer parameter.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] or [`SpaceError::TypeMismatch`].
    pub fn get_int(&self, name: &str) -> Result<i64, SpaceError> {
        let v = self
            .get(name)
            .ok_or_else(|| SpaceError::UnknownParam { name: name.into() })?;
        v.as_int().ok_or_else(|| SpaceError::TypeMismatch {
            name: name.into(),
            expected: "int",
            found: v.type_name(),
        })
    }

    /// Typed accessor for a float parameter.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] or [`SpaceError::TypeMismatch`].
    pub fn get_float(&self, name: &str) -> Result<f64, SpaceError> {
        let v = self
            .get(name)
            .ok_or_else(|| SpaceError::UnknownParam { name: name.into() })?;
        v.as_float().ok_or_else(|| SpaceError::TypeMismatch {
            name: name.into(),
            expected: "float",
            found: v.type_name(),
        })
    }

    /// Typed accessor for a categorical parameter.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] or [`SpaceError::TypeMismatch`].
    pub fn get_str(&self, name: &str) -> Result<&str, SpaceError> {
        let v = self
            .get(name)
            .ok_or_else(|| SpaceError::UnknownParam { name: name.into() })?;
        v.as_str().ok_or_else(|| SpaceError::TypeMismatch {
            name: name.into(),
            expected: "categorical",
            found: v.type_name(),
        })
    }

    /// Typed accessor for a boolean parameter.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] or [`SpaceError::TypeMismatch`].
    pub fn get_bool(&self, name: &str) -> Result<bool, SpaceError> {
        let v = self
            .get(name)
            .ok_or_else(|| SpaceError::UnknownParam { name: name.into() })?;
        v.as_bool().ok_or_else(|| SpaceError::TypeMismatch {
            name: name.into(),
            expected: "bool",
            found: v.type_name(),
        })
    }

    /// Iterates over `(name, value)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// A stable single-line key for deduplication (name=value pairs joined
    /// by commas). Float values are formatted with full precision.
    pub fn key(&self) -> String {
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(n, v)| match v {
                ParamValue::Float(x) => format!("{n}={x:?}"),
                other => format!("{n}={other}"),
            })
            .collect();
        parts.join(",")
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a Configuration {
    type Item = (&'a str, &'a ParamValue);
    type IntoIter = std::vec::IntoIter<(&'a str, &'a ParamValue)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries
            .iter()
            .map(|(n, v)| (n.as_str(), v))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Configuration {
        Configuration::from_pairs([
            ("workers", ParamValue::Int(8)),
            ("rate", ParamValue::Float(0.5)),
            ("arch", ParamValue::Str("ps".into())),
            ("pipelined", ParamValue::Bool(true)),
        ])
    }

    #[test]
    fn typed_getters() {
        let c = sample();
        assert_eq!(c.get_int("workers").unwrap(), 8);
        assert_eq!(c.get_float("rate").unwrap(), 0.5);
        assert_eq!(c.get_str("arch").unwrap(), "ps");
        assert!(c.get_bool("pipelined").unwrap());
    }

    #[test]
    fn getter_errors() {
        let c = sample();
        assert!(matches!(
            c.get_int("nope"),
            Err(SpaceError::UnknownParam { .. })
        ));
        assert!(matches!(
            c.get_int("rate"),
            Err(SpaceError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn set_replaces_value() {
        let mut c = sample();
        c.set("workers", ParamValue::Int(16)).unwrap();
        assert_eq!(c.get_int("workers").unwrap(), 16);
        assert!(c.set("nope", ParamValue::Int(1)).is_err());
    }

    #[test]
    fn ordering_is_preserved() {
        let c = sample();
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["workers", "rate", "arch", "pipelined"]);
        assert_eq!(c.value_at(0), Some(&ParamValue::Int(8)));
        assert_eq!(c.value_at(9), None);
    }

    #[test]
    fn key_distinguishes_configs() {
        let a = sample();
        let mut b = sample();
        b.set("workers", ParamValue::Int(9)).unwrap();
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key(), sample().key());
    }

    #[test]
    fn display_shows_all_entries() {
        let s = sample().to_string();
        assert!(s.contains("workers: 8"));
        assert!(s.contains("arch: ps"));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 4);
        assert!(!sample().is_empty());
        let e = Configuration::from_pairs(Vec::<(String, ParamValue)>::new());
        assert!(e.is_empty());
    }
}
