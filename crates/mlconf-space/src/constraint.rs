//! Feasibility constraints over configurations.
//!
//! Distributed-ML configuration spaces are never pure boxes: the number of
//! parameter servers must be smaller than the cluster size, thread counts
//! are bounded by the chosen machine type's cores, and so on. Constraints
//! are checked at sampling/decoding time so tuners only propose
//! *structurally* valid configurations; behavioural feasibility (e.g. OOM)
//! is the simulator's job and surfaces as a failed trial instead.

use std::sync::Arc;

use crate::config::Configuration;
use crate::error::SpaceError;
use crate::param::ParamValue;

/// Predicate type for [`Constraint::Custom`].
pub type Predicate = Arc<dyn Fn(&Configuration) -> bool + Send + Sync>;

/// A feasibility constraint over a configuration.
#[derive(Clone)]
pub enum Constraint {
    /// `Σ params ≤ bound` over integer parameters.
    SumLe {
        /// Names of the integer parameters being summed.
        params: Vec<String>,
        /// Inclusive upper bound on the sum.
        bound: i64,
    },
    /// `a < b` over two integer parameters.
    LtParam {
        /// Left-hand parameter name.
        a: String,
        /// Right-hand parameter name.
        b: String,
    },
    /// `a ≤ b` over two integer parameters.
    LeParam {
        /// Left-hand parameter name.
        a: String,
        /// Right-hand parameter name.
        b: String,
    },
    /// Constraint that only applies when a categorical/bool parameter has
    /// a particular value.
    When {
        /// Parameter that gates the inner constraint.
        param: String,
        /// Value that activates the inner constraint.
        equals: ParamValue,
        /// The gated constraint.
        then: Box<Constraint>,
    },
    /// Arbitrary user predicate with a diagnostic name.
    Custom {
        /// Name shown in diagnostics.
        name: String,
        /// The predicate; `true` means feasible.
        pred: Predicate,
    },
}

impl Constraint {
    /// Builds a custom constraint from a closure.
    pub fn custom(
        name: impl Into<String>,
        pred: impl Fn(&Configuration) -> bool + Send + Sync + 'static,
    ) -> Self {
        Constraint::Custom {
            name: name.into(),
            pred: Arc::new(pred),
        }
    }

    /// A short human-readable description of the constraint.
    pub fn describe(&self) -> String {
        match self {
            Constraint::SumLe { params, bound } => {
                format!("{} <= {bound}", params.join(" + "))
            }
            Constraint::LtParam { a, b } => format!("{a} < {b}"),
            Constraint::LeParam { a, b } => format!("{a} <= {b}"),
            Constraint::When {
                param,
                equals,
                then,
            } => format!("when {param} = {equals}: {}", then.describe()),
            Constraint::Custom { name, .. } => name.clone(),
        }
    }

    /// Evaluates the constraint against a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] or [`SpaceError::TypeMismatch`]
    /// when a referenced parameter is missing or not an integer (for the
    /// arithmetic forms).
    pub fn is_satisfied(&self, cfg: &Configuration) -> Result<bool, SpaceError> {
        match self {
            Constraint::SumLe { params, bound } => {
                let mut sum = 0i64;
                for p in params {
                    sum += cfg.get_int(p)?;
                }
                Ok(sum <= *bound)
            }
            Constraint::LtParam { a, b } => Ok(cfg.get_int(a)? < cfg.get_int(b)?),
            Constraint::LeParam { a, b } => Ok(cfg.get_int(a)? <= cfg.get_int(b)?),
            Constraint::When {
                param,
                equals,
                then,
            } => {
                let v = cfg.get(param).ok_or_else(|| SpaceError::UnknownParam {
                    name: param.clone(),
                })?;
                if v == equals {
                    then.is_satisfied(cfg)
                } else {
                    Ok(true)
                }
            }
            Constraint::Custom { pred, .. } => Ok(pred(cfg)),
        }
    }

    /// Names of all parameters the constraint references.
    pub fn referenced_params(&self) -> Vec<&str> {
        match self {
            Constraint::SumLe { params, .. } => params.iter().map(String::as_str).collect(),
            Constraint::LtParam { a, b } | Constraint::LeParam { a, b } => {
                vec![a.as_str(), b.as_str()]
            }
            Constraint::When { param, then, .. } => {
                let mut v = vec![param.as_str()];
                v.extend(then.referenced_params());
                v
            }
            Constraint::Custom { .. } => Vec::new(),
        }
    }
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Constraint({})", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ps: i64, workers: i64, nodes: i64) -> Configuration {
        Configuration::from_pairs([
            ("num_ps", ParamValue::Int(ps)),
            ("num_workers", ParamValue::Int(workers)),
            ("num_nodes", ParamValue::Int(nodes)),
            ("sync", ParamValue::Str("ssp".into())),
            ("staleness", ParamValue::Int(4)),
        ])
    }

    #[test]
    fn sum_le() {
        let c = Constraint::SumLe {
            params: vec!["num_ps".into(), "num_workers".into()],
            bound: 10,
        };
        assert!(c.is_satisfied(&cfg(4, 6, 10)).unwrap());
        assert!(!c.is_satisfied(&cfg(5, 6, 10)).unwrap());
    }

    #[test]
    fn lt_and_le() {
        let lt = Constraint::LtParam {
            a: "num_ps".into(),
            b: "num_nodes".into(),
        };
        assert!(lt.is_satisfied(&cfg(4, 6, 10)).unwrap());
        assert!(!lt.is_satisfied(&cfg(10, 6, 10)).unwrap());
        let le = Constraint::LeParam {
            a: "num_ps".into(),
            b: "num_nodes".into(),
        };
        assert!(le.is_satisfied(&cfg(10, 6, 10)).unwrap());
        assert!(!le.is_satisfied(&cfg(11, 6, 10)).unwrap());
    }

    #[test]
    fn conditional_only_fires_when_active() {
        let c = Constraint::When {
            param: "sync".into(),
            equals: ParamValue::Str("ssp".into()),
            then: Box::new(Constraint::LeParam {
                a: "staleness".into(),
                b: "num_workers".into(),
            }),
        };
        // sync = ssp, staleness 4 <= workers 6: ok.
        assert!(c.is_satisfied(&cfg(1, 6, 10)).unwrap());
        // staleness 4 > workers 2: violated.
        assert!(!c.is_satisfied(&cfg(1, 2, 10)).unwrap());
        // Different sync value deactivates the constraint.
        let mut other = cfg(1, 2, 10);
        other.set("sync", ParamValue::Str("bsp".into())).unwrap();
        assert!(c.is_satisfied(&other).unwrap());
    }

    #[test]
    fn custom_predicate() {
        let c = Constraint::custom("even workers", |cfg| {
            cfg.get_int("num_workers")
                .map(|w| w % 2 == 0)
                .unwrap_or(false)
        });
        assert!(c.is_satisfied(&cfg(1, 6, 10)).unwrap());
        assert!(!c.is_satisfied(&cfg(1, 7, 10)).unwrap());
        assert_eq!(c.describe(), "even workers");
    }

    #[test]
    fn missing_param_is_error() {
        let c = Constraint::LtParam {
            a: "nope".into(),
            b: "num_nodes".into(),
        };
        assert!(matches!(
            c.is_satisfied(&cfg(1, 1, 1)),
            Err(SpaceError::UnknownParam { .. })
        ));
    }

    #[test]
    fn referenced_params_collects_nested() {
        let c = Constraint::When {
            param: "sync".into(),
            equals: ParamValue::Str("ssp".into()),
            then: Box::new(Constraint::SumLe {
                params: vec!["a".into(), "b".into()],
                bound: 3,
            }),
        };
        assert_eq!(c.referenced_params(), vec!["sync", "a", "b"]);
    }

    #[test]
    fn debug_uses_description() {
        let c = Constraint::LtParam {
            a: "x".into(),
            b: "y".into(),
        };
        assert_eq!(format!("{c:?}"), "Constraint(x < y)");
    }
}
