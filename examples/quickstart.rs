//! Quickstart: tune the system configuration of one training job.
//!
//! Runs the Bayesian-optimization tuner for 20 trials against the small
//! MLP workload and prints the best configuration it found, alongside
//! the operator-default configuration for comparison.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mlconf::tuners::bo::BoTuner;
use mlconf::tuners::driver::{run_tuner, StoppingRule};
use mlconf::workloads::evaluator::ConfigEvaluator;
use mlconf::workloads::objective::Objective;
use mlconf::workloads::tunespace::default_config;
use mlconf::workloads::workload::mlp_mnist;

fn main() {
    const SEED: u64 = 42;
    const MAX_NODES: i64 = 16;
    const BUDGET: usize = 20;

    let evaluator = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, MAX_NODES, SEED);
    println!(
        "tuning `{}` ({}), objective: {}",
        evaluator.workload().name(),
        evaluator.workload().description(),
        evaluator.objective().name()
    );

    // How good is the configuration an operator would pick by hand?
    let default_cfg = default_config(MAX_NODES);
    let default_outcome = evaluator.evaluate(&default_cfg, 0);
    println!(
        "\noperator default: {default_cfg}\n  -> time-to-accuracy {:.0}s (${:.2})",
        default_outcome.tta_secs, default_outcome.cost_usd
    );

    // Let the tuner search.
    let mut tuner = BoTuner::with_defaults(evaluator.space().clone(), SEED);
    let result = run_tuner(&mut tuner, &evaluator, BUDGET, StoppingRule::None, SEED);

    println!("\ntrials:");
    for trial in result.history.trials() {
        match trial.outcome.objective {
            Some(v) => println!("  #{:>2}  {:>10.0}s  {}", trial.index, v, trial.config),
            None => println!(
                "  #{:>2}      FAILED  {}  ({})",
                trial.index,
                trial.config,
                trial.outcome.failure.as_deref().unwrap_or("?")
            ),
        }
    }

    let best = result
        .history
        .best()
        .expect("some sampled configuration must be feasible");
    println!("\nbest found: {}", best.config);
    println!(
        "  time-to-accuracy {:.0}s (${:.2}) — {:.1}x better than the default",
        best.outcome.tta_secs,
        best.outcome.cost_usd,
        default_outcome.tta_secs / best.outcome.tta_secs
    );
}
