//! Transfer learning: reuse yesterday's tuning run to accelerate today's.
//!
//! Tunes the compute-bound LDA workload once (the "source"), then tunes
//! the CNN workload three ways under a tight 10-trial budget:
//!
//! 1. cold-start BO,
//! 2. BO warm-started from the related LDA history,
//! 3. BO warm-started from an *unrelated* (memory-bound w2v) history —
//!    demonstrating negative transfer, the classic caveat.
//!
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use mlconf::tuners::bo::{BoConfig, BoTuner};
use mlconf::tuners::driver::{run_tuner, StoppingRule};
use mlconf::tuners::transfer::{SourceHistory, WarmStartBo};
use mlconf::workloads::evaluator::ConfigEvaluator;
use mlconf::workloads::objective::Objective;
use mlconf::workloads::workload::{cnn_cifar, lda_news, w2v_wiki, Workload};

const MAX_NODES: i64 = 32;
const SEED: u64 = 21;
const SOURCE_BUDGET: usize = 30;
const TARGET_BUDGET: usize = 10;

fn tune_source(workload: Workload, label: &str) -> SourceHistory {
    let ev = ConfigEvaluator::new(workload, Objective::TimeToAccuracy, MAX_NODES, SEED);
    let mut tuner = BoTuner::with_defaults(ev.space().clone(), SEED);
    let r = run_tuner(&mut tuner, &ev, SOURCE_BUDGET, StoppingRule::None, SEED);
    println!(
        "source `{label}` tuned: best {:.0}s over {} trials",
        r.best_value(),
        r.history.len()
    );
    SourceHistory::from_history(&r.history, ev.space()).expect("source history usable")
}

fn main() {
    println!("== phase 1: tune the source workloads ==");
    let related = tune_source(lda_news(), "lda-news (compute-bound, like the target)");
    let unrelated = tune_source(w2v_wiki(), "w2v-wiki (memory-bound, unlike the target)");

    println!("\n== phase 2: tune cnn-cifar with only {TARGET_BUDGET} trials ==");
    let ev = ConfigEvaluator::new(cnn_cifar(), Objective::TimeToAccuracy, MAX_NODES, SEED + 1);

    let mut cold = BoTuner::with_defaults(ev.space().clone(), SEED);
    let cold_r = run_tuner(&mut cold, &ev, TARGET_BUDGET, StoppingRule::None, SEED + 1);

    let mut warm = WarmStartBo::new(
        ev.space().clone(),
        BoConfig::default(),
        vec![related],
        TARGET_BUDGET * 2,
        SEED,
    );
    let warm_r = run_tuner(&mut warm, &ev, TARGET_BUDGET, StoppingRule::None, SEED + 1);

    let mut mismatched = WarmStartBo::new(
        ev.space().clone(),
        BoConfig::default(),
        vec![unrelated],
        TARGET_BUDGET * 2,
        SEED,
    );
    let mis_r = run_tuner(
        &mut mismatched,
        &ev,
        TARGET_BUDGET,
        StoppingRule::None,
        SEED + 1,
    );

    println!("\n{:<34} {:>14}", "strategy", "best tta(s)");
    for (label, r) in [
        ("cold-start BO", &cold_r),
        ("warm start from related source", &warm_r),
        ("warm start from unrelated source", &mis_r),
    ] {
        println!("{:<34} {:>14.0}", label, r.best_value());
    }
    println!(
        "\nRelated-source transfer should win at this budget; an unrelated\n\
         source can mislead the surrogate (negative transfer) — audit your\n\
         sources' similarity before reusing them."
    );
}
