//! Head-to-head tuner comparison on one workload.
//!
//! Runs every tuner (BO, random, LHS, coordinate descent, simulated
//! annealing, successive halving, Ernest-style parametric model) with
//! the same 30-trial budget on the sparse logistic-regression workload
//! and prints a leaderboard plus each tuner's best-so-far trajectory —
//! a single-seed miniature of experiment E2/E3.
//!
//! ```text
//! cargo run --release --example compare_tuners
//! ```

use mlconf::tuners::anneal::SimulatedAnnealing;
use mlconf::tuners::bo::BoTuner;
use mlconf::tuners::coordinate::CoordinateDescent;
use mlconf::tuners::driver::{run_tuner, StoppingRule, TuneResult};
use mlconf::tuners::ernest::ErnestTuner;
use mlconf::tuners::halving::SuccessiveHalving;
use mlconf::tuners::random::{LatinHypercubeSearch, RandomSearch};
use mlconf::tuners::tuner::Tuner;
use mlconf::workloads::evaluator::ConfigEvaluator;
use mlconf::workloads::objective::Objective;
use mlconf::workloads::tunespace::default_config;
use mlconf::workloads::workload::logreg_criteo;

fn main() {
    const SEED: u64 = 3;
    const MAX_NODES: i64 = 32;
    const BUDGET: usize = 30;

    let evaluator =
        ConfigEvaluator::new(logreg_criteo(), Objective::TimeToAccuracy, MAX_NODES, SEED);
    let space = evaluator.space().clone();

    let mut tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(BoTuner::with_defaults(space.clone(), SEED)),
        Box::new(RandomSearch::new(space.clone())),
        Box::new(LatinHypercubeSearch::new(space.clone(), 10)),
        Box::new(CoordinateDescent::new(
            space.clone(),
            Some(default_config(MAX_NODES)),
        )),
        Box::new(SimulatedAnnealing::new(space.clone(), BUDGET, SEED)),
        Box::new(SuccessiveHalving::new(space.clone(), 16)),
        Box::new(ErnestTuner::new(space.clone(), 15, 128)),
    ];

    let mut results: Vec<TuneResult> = tuners
        .iter_mut()
        .map(|t| run_tuner(t.as_mut(), &evaluator, BUDGET, StoppingRule::None, SEED))
        .collect();
    results.sort_by(|a, b| a.best_value().partial_cmp(&b.best_value()).unwrap());

    println!(
        "workload: {} — {} trials each, seed {SEED}\n",
        evaluator.workload().name(),
        BUDGET
    );
    println!(
        "{:<12} {:>14} {:>10}   best-so-far every 5 trials",
        "tuner", "best tta(s)", "fails"
    );
    for r in &results {
        let curve = r.best_curve();
        let samples: Vec<String> = (4..curve.len())
            .step_by(5)
            .map(|i| {
                if curve[i].is_finite() {
                    format!("{:>9.0}", curve[i])
                } else {
                    format!("{:>9}", "inf")
                }
            })
            .collect();
        let fails = r
            .history
            .trials()
            .iter()
            .filter(|t| !t.outcome.is_ok())
            .count();
        println!(
            "{:<12} {:>14.0} {:>10}   {}",
            r.tuner,
            r.best_value(),
            fails,
            samples.join("")
        );
    }
    println!("\nlower is better; `fails` counts OOM/infeasible trials the tuner burned");
}
