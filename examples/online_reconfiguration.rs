//! Online reconfiguration across a cluster condition shift.
//!
//! A compute-bound LDA job runs as BSP on an 8-node cluster. Six minutes
//! in, straggler severity jumps 8× (think: a co-located tenant). With the
//! controller off, throughput stays degraded; with it on, the controller
//! detects the sag, probes neighbouring configurations, and switches
//! (typically to an asynchronous or stale-synchronous mode that hides
//! the stragglers), paying a short pause.
//!
//! ```text
//! cargo run --release --example online_reconfiguration
//! ```

use mlconf::space::config::Configuration;
use mlconf::space::param::ParamValue;
use mlconf::tuners::online::{simulate_online, ControllerConfig, OnlineScenario};
use mlconf::workloads::workload::lda_news;

fn scenario(seed: u64) -> OnlineScenario {
    let initial = Configuration::from_pairs([
        ("num_nodes", ParamValue::Int(8)),
        ("machine_type", ParamValue::Str("c4.4xlarge".into())),
        ("arch", ParamValue::Str("ps".into())),
        ("num_ps", ParamValue::Int(2)),
        ("sync", ParamValue::Str("bsp".into())),
        ("staleness", ParamValue::Int(1)),
        ("batch_per_worker", ParamValue::Int(1024)),
        ("threads_per_worker", ParamValue::Int(16)),
        ("compress", ParamValue::Bool(false)),
    ]);
    OnlineScenario {
        workload: lda_news(),
        initial,
        session_secs: 1800.0,
        window_secs: 60.0,
        shift_at_secs: 360.0,
        shift_severity: 8.0,
        seed,
    }
}

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    values
        .iter()
        .map(|v| BARS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

fn main() {
    const SEED: u64 = 5;
    let on = simulate_online(&scenario(SEED), &ControllerConfig::default());
    let off = simulate_online(
        &scenario(SEED),
        &ControllerConfig {
            enabled: false,
            ..ControllerConfig::default()
        },
    );

    let series = |trace: &mlconf::tuners::online::OnlineTrace| -> Vec<f64> {
        trace.windows.iter().map(|w| w.throughput).collect()
    };

    println!("per-minute throughput (shift at minute 6, marked by controller events):\n");
    println!("controller OFF  {}", sparkline(&series(&off)));
    println!("controller ON   {}", sparkline(&series(&on)));
    println!();
    for &t in &on.reconfig_times {
        let idx = (t / 60.0) as usize;
        let key = on
            .windows
            .get(idx)
            .map(|w| w.config_key.as_str())
            .unwrap_or("?");
        println!("reconfigured at minute {:.0}: -> {}", t / 60.0, key);
    }
    println!(
        "\ntotal samples: on = {:.2e}, off = {:.2e}  ({:+.1}% from reconfiguration)",
        on.total_samples,
        off.total_samples,
        (on.total_samples / off.total_samples - 1.0) * 100.0
    );
}
