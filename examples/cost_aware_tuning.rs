//! Cost-aware tuning: dollars, not seconds — and deadlines.
//!
//! The cheapest configuration is rarely the fastest: small clusters of
//! cheap machines win on cost while big clusters win on time. This
//! example tunes the CNN workload under three objectives and shows how
//! the chosen configuration shifts:
//!
//! 1. minimize time-to-accuracy,
//! 2. minimize dollar cost to accuracy,
//! 3. minimize cost subject to a deadline (penalized).
//!
//! ```text
//! cargo run --release --example cost_aware_tuning
//! ```

use mlconf::tuners::bo::BoTuner;
use mlconf::tuners::driver::{run_tuner, StoppingRule};
use mlconf::workloads::evaluator::ConfigEvaluator;
use mlconf::workloads::objective::Objective;
use mlconf::workloads::workload::cnn_cifar;

fn main() {
    const SEED: u64 = 11;
    const MAX_NODES: i64 = 32;
    const BUDGET: usize = 25;

    let objectives = [
        ("fastest", Objective::TimeToAccuracy),
        ("cheapest", Objective::CostToAccuracy),
        (
            "cheapest within 2h",
            Objective::DeadlineCost {
                deadline_secs: 2.0 * 3600.0,
                penalty: 5.0,
            },
        ),
    ];

    println!("workload: cnn-cifar (compute-bound residual network)\n");
    println!(
        "{:<20} {:>10} {:>10} {:>7} {:>6}   machine / arch",
        "objective", "tta", "cost($)", "nodes", "batch"
    );
    for (label, objective) in objectives {
        let evaluator = ConfigEvaluator::new(cnn_cifar(), objective, MAX_NODES, SEED);
        let mut tuner = BoTuner::with_defaults(evaluator.space().clone(), SEED);
        let result = run_tuner(&mut tuner, &evaluator, BUDGET, StoppingRule::None, SEED);
        let Some(best) = result.history.best() else {
            println!("{label:<20} found nothing feasible");
            continue;
        };
        let cfg = &best.config;
        println!(
            "{:<20} {:>9.0}s {:>10.2} {:>7} {:>6}   {} / {}",
            label,
            best.outcome.tta_secs,
            best.outcome.cost_usd,
            cfg.get_int("num_nodes").unwrap(),
            cfg.get_int("batch_per_worker").unwrap(),
            cfg.get_str("machine_type").unwrap(),
            cfg.get_str("arch").unwrap(),
        );
    }
    println!(
        "\nNote how the cost objective prefers smaller/cheaper clusters and \
         the deadline objective lands in between."
    );
}
