//! Tune time-to-accuracy for every workload in the evaluation suite.
//!
//! For each of the seven suite workloads, runs the BO tuner for 25
//! trials and reports the best configuration, its predicted
//! time-to-accuracy, and the improvement over the operator default —
//! the scenario the paper's motivation section describes: the right
//! configuration differs *per workload*, so no static default wins
//! everywhere.
//!
//! ```text
//! cargo run --release --example tune_time_to_accuracy
//! ```

use mlconf::tuners::bo::BoTuner;
use mlconf::tuners::driver::{run_tuner, StoppingRule};
use mlconf::workloads::evaluator::ConfigEvaluator;
use mlconf::workloads::objective::Objective;
use mlconf::workloads::tunespace::default_config;
use mlconf::workloads::workload::suite;

fn main() {
    const SEED: u64 = 7;
    const MAX_NODES: i64 = 32;
    const BUDGET: usize = 25;

    println!(
        "{:<16} {:>12} {:>12} {:>8}   best configuration",
        "workload", "default(s)", "tuned(s)", "speedup"
    );
    for workload in suite() {
        let evaluator =
            ConfigEvaluator::new(workload.clone(), Objective::TimeToAccuracy, MAX_NODES, SEED);
        let default_outcome = evaluator.evaluate(&default_config(MAX_NODES), 0);

        let mut tuner = BoTuner::with_defaults(evaluator.space().clone(), SEED);
        let result = run_tuner(&mut tuner, &evaluator, BUDGET, StoppingRule::None, SEED);
        let Some(best) = result.history.best() else {
            println!(
                "{:<16} {:>12.0} {:>12} — nothing feasible found",
                workload.name(),
                default_outcome.tta_secs,
                "-"
            );
            continue;
        };

        let speedup = default_outcome.tta_secs / best.outcome.tta_secs;
        println!(
            "{:<16} {:>12.0} {:>12.0} {:>7.1}x   {}",
            workload.name(),
            default_outcome.tta_secs,
            best.outcome.tta_secs,
            speedup,
            best.config
        );
    }
    println!("\n(25 BO trials per workload, clusters up to 32 nodes, seed 7)");
}
