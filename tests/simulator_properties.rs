//! Cross-crate property tests on the simulator as seen through the
//! workload layer: monotonicities and conservation properties that any
//! credible cluster model must satisfy.

use mlconf::sim::cluster::{machine_by_name, ClusterSpec};
use mlconf::sim::engine::{simulate, SimOptions};
use mlconf::sim::runconfig::{Arch, RunConfig, SyncMode};
use mlconf::util::rng::Pcg64;
use mlconf::workloads::workload::{by_name, suite};
use proptest::prelude::*;

fn bsp(num_ps: u32) -> Arch {
    Arch::ParameterServer {
        num_ps,
        sync: SyncMode::Bsp,
    }
}

fn run(
    workload: &str,
    machine: &str,
    nodes: u32,
    arch: Arch,
    batch: u32,
    threads: u32,
    seed: u64,
) -> mlconf::sim::outcome::SimResult {
    let w = by_name(workload).expect("suite workload");
    let rc = RunConfig::new(
        ClusterSpec::new(machine_by_name(machine).expect("catalog machine"), nodes),
        arch,
        batch,
        threads,
        false,
    )
    .expect("valid run config");
    simulate(
        w.job(),
        &rc,
        &SimOptions::deterministic(),
        &mut Pcg64::seed(seed),
    )
}

#[test]
fn faster_network_never_hurts_any_suite_workload() {
    // Same cores (8) and compute rate, 1 Gbps vs 10 Gbps-class machines:
    // c4.2xlarge vs c4.8xlarge (more cores AND more bandwidth — strictly
    // better hardware must never reduce throughput).
    for w in suite() {
        let slow = run(w.name(), "c4.2xlarge", 8, bsp(2), 64, 8, 1);
        let fast = run(w.name(), "c4.8xlarge", 8, bsp(2), 64, 8, 1);
        if slow.is_feasible() && fast.is_feasible() {
            assert!(
                fast.throughput() >= slow.throughput() * 0.999,
                "{}: better hardware reduced throughput {} -> {}",
                w.name(),
                slow.throughput(),
                fast.throughput()
            );
        }
    }
}

#[test]
fn throughput_scales_sanely_with_cluster_size() {
    // Adding workers at fixed servers must never make the measured
    // throughput collapse below the smaller cluster's on compute-bound
    // work, and must never exceed linear scaling on anything.
    let w = "lda-news";
    let t4 = run(w, "c4.2xlarge", 5, bsp(1), 256, 8, 2).throughput();
    let t8 = run(w, "c4.2xlarge", 9, bsp(1), 256, 8, 2).throughput();
    assert!(t8 > t4, "4->8 workers lost throughput on compute-bound lda");
    assert!(t8 < t4 * 2.5, "superlinear scaling is a bug");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn deterministic_sim_is_noise_free_across_seeds(
        seed1 in 0u64..1000, seed2 in 0u64..1000,
        batch in 16u32..512,
    ) {
        // With the straggler model off, the engine is analytic: seeds
        // must not matter.
        let a = run("mlp-mnist", "c4.2xlarge", 6, bsp(2), batch, 8, seed1);
        let b = run("mlp-mnist", "c4.2xlarge", 6, bsp(2), batch, 8, seed2);
        prop_assert_eq!(a.throughput(), b.throughput());
    }

    #[test]
    fn phase_breakdown_accounts_for_positive_time(
        nodes in 3u32..12,
        batch in 16u32..512,
    ) {
        let r = run("mf-netflix", "c4.2xlarge", nodes, bsp(1), batch, 8, 0);
        prop_assert!(r.is_feasible());
        let p = r.phases();
        prop_assert!(p.compute > 0.0);
        prop_assert!(p.push > 0.0);
        prop_assert!(p.pull > 0.0);
        prop_assert!(p.total().is_finite());
    }

    #[test]
    fn allreduce_and_ps_both_run_every_workload_or_oom_cleanly(
        idx in 0usize..7,
        nodes in 3u32..10,
    ) {
        let w = suite()[idx].clone();
        for arch in [bsp(1), Arch::AllReduce] {
            let rc = RunConfig::new(
                ClusterSpec::new(machine_by_name("r4.2xlarge").unwrap(), nodes),
                arch, 32, 8, false,
            ).unwrap();
            let r = simulate(w.job(), &rc, &SimOptions::deterministic(), &mut Pcg64::seed(5));
            // Either a clean run or a structured OOM — never a bogus
            // zero-throughput "success".
            if r.is_feasible() {
                prop_assert!(r.throughput() > 0.0, "{} under {:?}", w.name(), rc.arch());
            } else {
                prop_assert!(r.infeasibility().is_some());
            }
        }
    }
}
