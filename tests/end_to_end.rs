//! End-to-end integration tests: the full tune-a-workload pipeline
//! across all crates through the `mlconf` facade.

use mlconf::tuners::anneal::SimulatedAnnealing;
use mlconf::tuners::bo::BoTuner;
use mlconf::tuners::coordinate::CoordinateDescent;
use mlconf::tuners::driver::{run_tuner, StoppingRule};
use mlconf::tuners::ernest::ErnestTuner;
use mlconf::tuners::halving::SuccessiveHalving;
use mlconf::tuners::random::{LatinHypercubeSearch, RandomSearch};
use mlconf::tuners::tuner::Tuner;
use mlconf::workloads::evaluator::ConfigEvaluator;
use mlconf::workloads::objective::Objective;
use mlconf::workloads::tunespace::default_config;
use mlconf::workloads::workload::{mlp_mnist, suite};

fn evaluator(seed: u64) -> ConfigEvaluator {
    ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 16, seed)
}

#[test]
fn every_tuner_completes_a_small_run() {
    let ev = evaluator(1);
    let space = ev.space().clone();
    let mut tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(BoTuner::with_defaults(space.clone(), 1)),
        Box::new(RandomSearch::new(space.clone())),
        Box::new(LatinHypercubeSearch::new(space.clone(), 8)),
        Box::new(CoordinateDescent::new(
            space.clone(),
            Some(default_config(16)),
        )),
        Box::new(SimulatedAnnealing::new(space.clone(), 12, 1)),
        Box::new(SuccessiveHalving::new(space.clone(), 8)),
        Box::new(ErnestTuner::new(space.clone(), 13, 32)),
    ];
    for t in &mut tuners {
        let name = t.name().to_owned();
        let r = run_tuner(t.as_mut(), &ev, 14, StoppingRule::None, 1);
        assert_eq!(r.history.len(), 14, "{name} did not fill its budget");
        assert!(
            r.best_value().is_finite(),
            "{name} found nothing feasible in 14 trials"
        );
        // Best-so-far curve is monotone non-increasing once finite.
        let curve = r.best_curve();
        for w in curve.windows(2) {
            assert!(
                w[1] <= w[0] || w[0].is_infinite(),
                "{name} curve not monotone"
            );
        }
    }
}

#[test]
fn tuned_config_beats_default_on_most_workloads() {
    // The headline claim in miniature: with a modest budget the BO tuner
    // finds configurations no worse than the operator default, usually
    // much better, on most suite workloads.
    let mut wins = 0;
    let mut total = 0;
    for workload in suite() {
        let ev = ConfigEvaluator::new(workload, Objective::TimeToAccuracy, 16, 9);
        let default_outcome = ev.evaluate(&default_config(16), 0);
        let mut tuner = BoTuner::with_defaults(ev.space().clone(), 9);
        let r = run_tuner(&mut tuner, &ev, 18, StoppingRule::None, 9);
        total += 1;
        if r.best_value() <= default_outcome.tta_secs * 1.05 {
            wins += 1;
        }
    }
    assert!(
        wins * 10 >= total * 8,
        "tuner matched/beat the default on only {wins}/{total} workloads"
    );
}

#[test]
fn runs_are_reproducible_across_identical_invocations() {
    let mk = || {
        let ev = evaluator(17);
        let mut t = BoTuner::with_defaults(ev.space().clone(), 17);
        run_tuner(&mut t, &ev, 12, StoppingRule::None, 17)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b, "same seeds must reproduce bit-identical histories");
}

#[test]
fn different_seeds_explore_differently() {
    let ev = evaluator(2);
    let mut t1 = BoTuner::with_defaults(ev.space().clone(), 100);
    let mut t2 = BoTuner::with_defaults(ev.space().clone(), 200);
    let a = run_tuner(&mut t1, &ev, 10, StoppingRule::None, 100);
    let b = run_tuner(&mut t2, &ev, 10, StoppingRule::None, 200);
    let keys_a: Vec<String> = a.history.trials().iter().map(|t| t.config.key()).collect();
    let keys_b: Vec<String> = b.history.trials().iter().map(|t| t.config.key()).collect();
    assert_ne!(keys_a, keys_b);
}

#[test]
fn failed_trials_carry_reasons_and_cost() {
    // Sample broadly; some configurations hit memory cliffs on the
    // biggest workload. Their outcomes must carry a reason and a
    // non-zero search cost.
    let ev = ConfigEvaluator::new(
        mlconf::workloads::workload::w2v_wiki(),
        Objective::TimeToAccuracy,
        16,
        3,
    );
    let mut rt = RandomSearch::new(ev.space().clone());
    let r = run_tuner(&mut rt, &ev, 40, StoppingRule::None, 3);
    let failures: Vec<_> = r
        .history
        .trials()
        .iter()
        .filter(|t| !t.outcome.is_ok())
        .collect();
    for f in &failures {
        assert!(f.outcome.failure.is_some());
        assert!(f.outcome.search_cost_machine_secs > 0.0);
        assert_eq!(f.outcome.objective, None);
    }
    // w2v's 300M-param model (1.2 GB dense + optimizer state) must OOM
    // at least one sampled single-server configuration in 40 draws.
    assert!(
        !failures.is_empty(),
        "expected some OOM trials on the memory-bound workload"
    );
}
