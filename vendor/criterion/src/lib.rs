//! Offline micro-benchmark harness, API-compatible with the subset of
//! `criterion` used by this workspace (see `vendor/README.md`).
//!
//! Supported surface: `Criterion`, `benchmark_group` (+ `sample_size`,
//! `bench_function`, `bench_with_input`, `finish`), `bench_function` on
//! `Criterion` itself, `BenchmarkId::from_parameter` / `::new`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! `sample_size` samples of adaptively-chosen iteration counts; the
//! median per-iteration time is reported on stdout as
//! `bench <name> ... median <t> ns/iter`. A benchmark name filter may be
//! passed on the command line (as cargo-bench does).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
/// Warmup budget per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a parameter's display form.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> Self {
        BenchmarkId {
            param: param.to_string(),
        }
    }

    /// Creates an id from a function name plus a parameter, shown as
    /// `name/param` like criterion.
    pub fn new<N: std::fmt::Display, P: std::fmt::Display>(name: N, param: P) -> Self {
        BenchmarkId {
            param: format!("{name}/{param}"),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup: discover the per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP_TIME {
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
        let target_iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        b.iters = target_iters.clamp(1, 1_000_000);
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(3) {
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    samples_ns.sort_by(|a, c| a.partial_cmp(c).expect("finite timings"));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    println!(
        "bench {name:<52} median {median:>14.1} ns/iter (min {min:.1}, max {max:.1}, \
         {} samples x {} iters)",
        samples_ns.len(),
        b.iters
    );
}

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo-bench passes "--bench" plus any user filter; take the
        // first non-flag argument as a substring filter like criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.enabled(name) {
            run_one(name, self.default_sample_size, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark named by `id` within this group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.enabled(&full) {
            run_one(&full, self.sample_size, &mut f);
        }
        self
    }

    /// Runs a parameterized benchmark; the input is passed back to the
    /// closure, matching criterion's signature.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.param);
        if self.criterion.enabled(&full) {
            run_one(&full, self.sample_size, &mut |b| f(b, input));
        }
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| 2u64 + 2);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut ran = 0;
        c.bench_function("smoke", |b| b.iter(|| black_box(1)));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
                ran += 1;
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
            default_sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }
}
