//! Offline subset of the `crossbeam` crate: scoped threads.
//!
//! The workspace only uses `crossbeam::thread::scope` / `Scope::spawn` /
//! `ScopedJoinHandle::join`. Since Rust 1.63 the standard library provides
//! scoped threads natively, so this vendored stand-in (see
//! `vendor/README.md`) delegates to `std::thread::scope` while keeping
//! crossbeam's call signatures: the scope closure and each spawned closure
//! receive a `&Scope` argument, and `scope`/`join` return `Result`s whose
//! error is the panic payload.

/// Scoped-thread module mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Result of a scope or join: `Err` carries a panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle for spawning threads that may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining returns the closure's result or
    /// the panic payload.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned.
    ///
    /// Unlike crossbeam (which collects panics from unjoined threads into
    /// the returned `Err`), the std backend propagates unjoined panics by
    /// panicking; in-tree callers always join every handle, where both
    /// implementations behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns_values() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_from_scope_argument() {
        let r = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn join_reports_panics() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
