//! No-op derive macros backing the offline `serde` stub.
//!
//! The stub `serde` crate blanket-implements its marker `Serialize` /
//! `Deserialize` traits for every type, so these derives have nothing to
//! emit: they exist purely so `#[derive(Serialize, Deserialize)]`
//! attributes compile unchanged against the vendored facade.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
