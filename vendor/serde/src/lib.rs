//! Offline stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream consumers, but no in-tree code path performs (de)serialization
//! (reports are written with hand-rolled CSV/JSON). In the offline build
//! environment the real `serde` cannot be fetched, so this stub provides
//! the two traits as blanket-implemented markers and no-op derive macros
//! (see `vendor/README.md`). Swapping the real `serde` back in requires no
//! source changes: the trait and derive names are identical.

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
