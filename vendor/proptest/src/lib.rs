//! Offline mini property-testing harness, API-compatible with the subset
//! of `proptest` used by this workspace (see `vendor/README.md`).
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {..} }`
//! * Range strategies over the integer/float primitives, tuples of
//!   strategies, and `proptest::collection::vec(elem, size)`.
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//!   `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test stream (seeded from the test's module path and name) and
//! failing cases are *not* shrunk — the failing inputs are printed
//! instead. That trade keeps the harness a few hundred lines and entirely
//! offline while preserving the regression-catching value of the
//! property suites.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic input stream for generated test cases.

    /// SplitMix64-based stream; statistically solid and tiny.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a stream from a seed (derived from the test name).
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// FNV-1a hash used to derive per-test seeds from test names.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// Harness configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Error produced by a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; try another input.
    Reject,
    /// The property failed.
    Fail(String),
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `sample` directly produces a value.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        v.min(self.end - (self.end - self.start) * f64::EPSILON)
            .max(self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        Range {
            start: self.start as f64,
            end: self.end as f64,
        }
        .sample(rng) as f32
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Creates a `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span <= 1 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::new($crate::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            )));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 256 + config.cases * 16,
                            "proptest {}: too many rejected cases ({rejected})",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed: {}\n  inputs: {}",
                            stringify!($name), msg, inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `assert!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            a in 0usize..10,
            b in -5i64..=5,
            c in 0.25f64..0.75,
            d in 0.0f64..=1.0,
        ) {
            prop_assert!(a < 10);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&c));
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn vec_sizes_respect_spec(
            fixed in crate::collection::vec(0u32..100, 7),
            ranged in crate::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..12),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..12).contains(&ranged.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_and_assume_work(n in 0u64..1000) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    #[allow(unnameable_test_items)] // the nested #[test] is invoked directly
    fn failures_panic_with_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x too small: {}", x);
            }
        }
        always_fails();
    }
}
