//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of `rand` items the codebase uses are vendored here
//! (see `vendor/README.md`). The implementation intentionally mirrors
//! `rand 0.8` semantics where the workspace depends on them:
//!
//! * `RngCore` / `SeedableRng` traits with the same method set.
//! * A blanket `Rng` extension trait providing `gen`, `gen_range`, and
//!   `gen_bool`.
//! * Uniform ranges for the integer and float types used in-tree.
//!
//! All randomness in the workspace flows through `mlconf_util::rng::Pcg64`,
//! which implements [`RngCore`]; this crate supplies only trait plumbing
//! and uniform-range conversion, both of which are deterministic given the
//! underlying generator, so experiment reproducibility is preserved.

use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (always succeeds in-tree).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over half-open / closed intervals,
/// mirroring `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply mapping of a 64-bit draw onto [0, span). The bias
    // is at most span/2^64, which is negligible for the small spans used
    // by the workspace and, crucially, fully deterministic.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    // span == 0 means the full u64 domain; use a raw draw.
                    let off = if span == 0 {
                        rng.next_u64()
                    } else {
                        uniform_u64_below(rng, span)
                    };
                    (lo as i128 + off as i128) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard the open upper bound against rounding.
                if !inclusive && v >= hi {
                    <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full domain for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&v));
            let w = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_range_stays_in_bounds_and_hits_endpoints() {
        let mut rng = Lcg(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range reached"
        );
    }

    #[test]
    fn gen_is_deterministic() {
        let a: f64 = Lcg(1).gen();
        let b: f64 = Lcg(1).gen();
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = Lcg(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
