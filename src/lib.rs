#![warn(missing_docs)]
//! # mlconf — automating system configuration of distributed machine learning
//!
//! `mlconf` is a full reconstruction of a Bayesian-optimization-based
//! automatic configuration tuner for distributed ML training systems
//! (ICDCS 2019 class; see `DESIGN.md` for the reconstruction notes),
//! together with every substrate it needs: a typed configuration space,
//! a from-scratch Gaussian-process/BO stack, a discrete-event cluster
//! simulator (parameter server and ring all-reduce), workload and
//! convergence models, baseline tuners, and an online reconfiguration
//! controller.
//!
//! This crate is the facade: it re-exports each layer under a stable
//! module name. Downstream users depend on `mlconf` alone.
//!
//! ## Layers
//!
//! | Module | Crate | Provides |
//! |---|---|---|
//! | [`util`] | `mlconf-util` | deterministic RNG, stats, linalg, optimizers, sampling |
//! | [`space`] | `mlconf-space` | typed parameters, constraints, unit-cube encoding |
//! | [`gp`] | `mlconf-gp` | GP regression, acquisitions, hyperparameter fitting |
//! | [`sim`] | `mlconf-sim` | the cluster: machines, network, PS/all-reduce engines, stragglers, OOM, failures |
//! | [`workloads`] | `mlconf-workloads` | the job suite, convergence laws, objectives, evaluator |
//! | [`tuners`] | `mlconf-tuners` | BO tuner + baselines, experiment driver, online controller |
//!
//! ## Quickstart
//!
//! ```
//! use mlconf::tuners::bo::BoTuner;
//! use mlconf::tuners::driver::{run_tuner, StoppingRule};
//! use mlconf::workloads::evaluator::ConfigEvaluator;
//! use mlconf::workloads::objective::Objective;
//! use mlconf::workloads::workload::mlp_mnist;
//!
//! // Tune the time-to-accuracy of a small MLP training job on clusters
//! // of up to 8 machines.
//! let evaluator = ConfigEvaluator::new(mlp_mnist(), Objective::TimeToAccuracy, 8, 42);
//! let mut tuner = BoTuner::with_defaults(evaluator.space().clone(), 42);
//! let result = run_tuner(&mut tuner, &evaluator, 10, StoppingRule::None, 42);
//!
//! let best = result.history.best().expect("at least one feasible trial");
//! println!("best config: {}", best.config);
//! println!("time-to-accuracy: {:.0}s", best.outcome.tta_secs);
//! ```

pub use mlconf_gp as gp;
pub use mlconf_sim as sim;
pub use mlconf_space as space;
pub use mlconf_tuners as tuners;
pub use mlconf_util as util;
pub use mlconf_workloads as workloads;

/// Crate version, for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Touch one item from each layer so a broken re-export fails here.
        let _ = crate::util::rng::Pcg64::seed(0);
        let _ = crate::space::param::Param::int("x", 0, 1).unwrap();
        let _ = crate::gp::kernel::KernelFamily::Matern52;
        let _ = crate::sim::cluster::default_catalog();
        let _ = crate::workloads::workload::suite();
        let _ = crate::tuners::driver::StoppingRule::None;
        assert!(!crate::VERSION.is_empty());
    }
}
